"""Unit tests for the K-slack buffer (repro.core.kslack)."""

import pytest

from repro import KSlackBuffer, StreamTuple


def _t(ts, seq=0):
    return StreamTuple(ts=ts, stream=0, seq=seq)


def _feed(buffer, timestamps):
    """Feed timestamps in arrival order; return released ts in order."""
    out = []
    for seq, ts in enumerate(timestamps):
        out.extend(t.ts for t in buffer.process(_t(ts, seq)))
    return out


class TestRelease:
    def test_k_zero_is_passthrough(self):
        b = KSlackBuffer(0)
        assert _feed(b, [5, 3, 8]) == [5, 3, 8]

    def test_holds_back_k_time_units(self):
        b = KSlackBuffer(10)
        # ts 5 arrives: iT=5, nothing with ts+10 <= 5.
        assert _feed(b, [5]) == []
        # ts 15: iT=15 → release ts 5 (5+10 <= 15).
        b2 = KSlackBuffer(10)
        assert _feed(b2, [5, 15]) == [5]

    def test_release_is_timestamp_ordered(self):
        b = KSlackBuffer(5)
        released = _feed(b, [10, 7, 9, 8, 20])
        assert released == sorted(released)
        assert released == [7, 8, 9, 10]

    def test_paper_figure3_example(self):
        # Paper Fig. 3: K=1, input ts sequence 1,4,3,5,7,8,6,9
        # (time unit = 1 ms here).  The ts-6 tuple (delay 2 > K=1) leaves
        # the buffer still out of order — after ts 7 — but with its delay
        # reduced to 1, exactly as the figure shows.
        b = KSlackBuffer(1)
        released = _feed(b, [1, 4, 3, 5, 7, 8, 6, 9])
        assert released == [1, 3, 4, 5, 7, 6, 8]
        remaining = [t.ts for t in b.flush()]
        assert remaining == [9]

    def test_tuple_with_delay_beyond_k_still_out_of_order(self):
        b = KSlackBuffer(1)
        _feed(b, [1, 4, 3, 5, 7, 8])
        # Delay of ts-6 tuple is 8-6=2 > K=1; when it arrives it is
        # released in the same batch as older buffered tuples but its
        # reduced delay means it is no longer sortable before ts 7.
        released = [t.ts for t in b.process(_t(6, seq=6))]
        assert 6 in released

    def test_no_duplicate_releases(self):
        b = KSlackBuffer(3)
        released = _feed(b, list(range(0, 30, 2)))
        released += [t.ts for t in b.flush()]
        assert sorted(released) == list(range(0, 30, 2))
        assert len(released) == len(set(released))


class TestDelayAnnotation:
    def test_in_order_tuple_has_zero_delay(self):
        b = KSlackBuffer(0)
        t = _t(10)
        b.process(t)
        assert t.delay == 0

    def test_late_tuple_delay_measured_from_local_time(self):
        b = KSlackBuffer(0)
        b.process(_t(10))
        late = _t(4, seq=1)
        b.process(late)
        assert late.delay == 6

    def test_max_observed_delay_tracked(self):
        b = KSlackBuffer(0)
        _feed(b, [10, 4, 9, 2])
        assert b.max_observed_delay == 8

    def test_local_time_is_max_ts(self):
        b = KSlackBuffer(0)
        _feed(b, [10, 4])
        assert b.local_time == 10


class TestDynamicK:
    def test_shrinking_k_releases_immediately(self):
        b = KSlackBuffer(100)
        _feed(b, [10, 50])
        assert b.buffered == 2
        released = b.set_k(0)
        assert [t.ts for t in released] == [10, 50]
        assert b.buffered == 0

    def test_growing_k_releases_nothing(self):
        b = KSlackBuffer(20)
        b.process(_t(10))
        assert b.set_k(50) == []
        # ts 30 arrives: with K=50, 10+50 > 30 → both held.
        assert b.process(_t(30, seq=1)) == []
        assert b.buffered == 2

    def test_partial_release_on_shrink(self):
        b = KSlackBuffer(100)
        _feed(b, [10, 90])  # iT=90
        released = b.set_k(20)  # bound = 70: only ts 10 released
        assert [t.ts for t in released] == [10]
        assert b.buffered == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            KSlackBuffer(-1)
        b = KSlackBuffer(0)
        with pytest.raises(ValueError):
            b.set_k(-5)


class TestFlush:
    def test_flush_returns_sorted_remainder(self):
        b = KSlackBuffer(1000)
        _feed(b, [30, 10, 20])
        assert [t.ts for t in b.flush()] == [10, 20, 30]

    def test_flush_empties_buffer(self):
        b = KSlackBuffer(1000)
        _feed(b, [1, 2])
        b.flush()
        assert b.buffered == 0
        assert b.flush() == []


class TestCompleteSorting:
    def test_k_at_max_delay_yields_sorted_output(self):
        # If K >= max delay, the output must be fully timestamp-ordered.
        arrivals = [100, 40, 130, 90, 160, 150, 200, 170, 260, 240]
        max_delay = 0
        local = 0
        for ts in arrivals:
            local = max(local, ts)
            max_delay = max(max_delay, local - ts)
        b = KSlackBuffer(max_delay)
        released = _feed(b, arrivals)
        released += [t.ts for t in b.flush()]
        assert released == sorted(arrivals)


class TestFlushContract:
    def test_flush_is_terminal_process_raises(self):
        b = KSlackBuffer(100)
        b.process(_t(10))
        b.flush()
        assert b.flushed
        with pytest.raises(RuntimeError):
            b.process(_t(500, seq=1))

    def test_flush_is_idempotent_and_empty(self):
        b = KSlackBuffer(100)
        b.process(_t(10))
        assert [t.ts for t in b.flush()] == [10]
        assert b.flush() == []
        assert b.flush() == []

    def test_process_batch_rejected_after_flush(self):
        b = KSlackBuffer(100)
        b.flush()
        with pytest.raises(RuntimeError):
            b.process_batch([_t(10)])

    def test_clock_and_delay_stats_survive_flush(self):
        # The terminal contract exists exactly because these stop moving:
        # they must still be readable (reporting) after the flush.
        b = KSlackBuffer(50)
        b.process(_t(100))
        b.process(_t(30, seq=1))  # delay 70
        b.flush()
        assert b.local_time == 100
        assert b.max_observed_delay == 70


class TestBatchedProcessing:
    def test_batch_equals_per_tuple_releases(self):
        timestamps = [10, 7, 9, 8, 20, 3, 25, 24, 40]
        per_tuple = KSlackBuffer(5)
        expected = _feed(per_tuple, timestamps)
        batched = KSlackBuffer(5)
        got = [
            t.ts
            for t in batched.process_batch(
                [_t(ts, seq) for seq, ts in enumerate(timestamps)]
            )
        ]
        assert got == expected
        assert batched.local_time == per_tuple.local_time
        assert batched.max_observed_delay == per_tuple.max_observed_delay
        assert batched.tuples_seen == per_tuple.tuples_seen
        assert batched.buffered == per_tuple.buffered

    def test_batch_annotates_delays(self):
        b = KSlackBuffer(0)
        tuples = [_t(10), _t(4, seq=1), _t(12, seq=2)]
        b.process_batch(tuples)
        assert [t.delay for t in tuples] == [0, 6, 0]

    def test_empty_batch(self):
        b = KSlackBuffer(5)
        assert b.process_batch([]) == []
