"""Determinism suite for the batched, plan-cached execution engine.

The load-bearing contract of `process_batch` at every layer — operator,
single pipeline, partitioned pipeline — is **exact equivalence** with
per-tuple processing: the same disordered workload must produce the
*identical result sequence* (not just set or multiset) and identical
`JoinStatistics` / `PipelineMetrics` counters, because batching is a pure
driver optimization, never a semantic change.  The probe-plan cache gets
the same treatment: clearing it between tuples (forcing a rebuild every
trigger, i.e. the pre-cache behaviour) must not change a single result.
"""

import pytest

from repro import (
    BandPredicate,
    EquiPredicate,
    FixedKPolicy,
    JoinCondition,
    MaxKSlackPolicy,
    MSWJOperator,
    PipelineConfig,
    QualityDrivenPipeline,
    StreamTuple,
    equi_join_chain,
    make_d3_syn,
    run_partitioned,
    seconds,
)

CONDITION = equi_join_chain("a1", 3)


def _dataset(duration_s=10, seed=7):
    return make_d3_syn(
        duration_ms=seconds(duration_s), seed=seed, inter_arrival_ms=50
    )


def _config(dataset, policy=None, collect=True, gamma=0.95, adaptive=False):
    """Fixed-K by default; ``adaptive=True`` leaves ``policy=None`` so the
    pipeline runs the paper's ModelBasedPolicy adaptation loop."""
    k = dataset.max_delay()
    if adaptive:
        policy, initial_k = None, 0
    elif policy is None:
        policy, initial_k = FixedKPolicy(k), k
    else:
        initial_k = 0
    return PipelineConfig(
        window_sizes_ms=[seconds(2)] * 3,
        condition=CONDITION,
        gamma=gamma,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=policy,
        initial_k_ms=initial_k,
        collect_results=collect,
    )


def _sequence(results):
    return [(r.ts, r.key()) for r in results]


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


# ----------------------------------------------------------------------
# operator level
# ----------------------------------------------------------------------


def _mswj_workload(seed=3):
    """A synchronized-ish stream with genuine disorder: in-order runs,
    keepable out-of-order tuples, and droppable stragglers."""
    import random

    rng = random.Random(seed)
    tuples = []
    ts = 0
    for seq in range(400):
        ts += rng.randint(0, 120)
        jitter = rng.choice((0, 0, 0, -150, -80, -2_500))
        t_ts = max(0, ts + jitter)
        tuples.append(
            StreamTuple(
                ts=t_ts,
                values={"a1": rng.randint(1, 12), "v": rng.randint(0, 40)},
                stream=seq % 3,
                seq=seq,
            )
        )
    return tuples


class TestOperatorBatched:
    @pytest.mark.parametrize(
        "condition",
        [
            CONDITION,
            JoinCondition(
                [EquiPredicate(0, "a1", 1, "a1"), BandPredicate(1, "v", 2, "v", 10.0)]
            ),
        ],
        ids=["equi-chain", "equi+band"],
    )
    def test_batch_matches_per_tuple_results_and_stats(self, condition):
        workload = _mswj_workload()
        per_tuple = MSWJOperator([1_000, 1_000, 1_000], condition)
        expected = []
        for t in workload:
            expected.extend(per_tuple.process(t))
        batched = MSWJOperator([1_000, 1_000, 1_000], condition)
        got = batched.process_batch(workload)
        assert _sequence(got) == _sequence(expected)
        assert batched.stats.as_dict() == per_tuple.stats.as_dict()
        assert batched.on_t == per_tuple.on_t
        assert batched.window_cardinalities() == per_tuple.window_cardinalities()

    def test_count_only_mode_matches(self):
        workload = _mswj_workload(seed=5)
        per_tuple = MSWJOperator([1_000] * 3, CONDITION, collect_results=False)
        expected = sum(per_tuple.process(t) for t in workload)
        batched = MSWJOperator([1_000] * 3, CONDITION, collect_results=False)
        assert batched.process_batch(workload) == expected
        assert batched.stats.as_dict() == per_tuple.stats.as_dict()

    def test_probe_out_of_order_mode_matches(self):
        workload = _mswj_workload(seed=9)
        per_tuple = MSWJOperator([1_000] * 3, CONDITION, probe_out_of_order=True)
        expected = []
        for t in workload:
            expected.extend(per_tuple.process(t))
        batched = MSWJOperator([1_000] * 3, CONDITION, probe_out_of_order=True)
        got = batched.process_batch(workload)
        assert _sequence(got) == _sequence(expected)
        assert batched.stats.as_dict() == per_tuple.stats.as_dict()

    def test_batch_rejects_bad_stream_index(self):
        op = MSWJOperator([1_000] * 3, CONDITION)
        with pytest.raises(ValueError):
            op.process_batch([StreamTuple(ts=1, stream=7)])

    def test_productivity_callback_sequence_identical(self):
        workload = _mswj_workload(seed=11)
        calls = []

        def record(kind):
            def callback(t, n_cross, n_on, in_order):
                calls.append((kind, t.seq, n_cross, n_on, in_order))

            return callback

        per_tuple = MSWJOperator(
            [1_000] * 3, CONDITION, productivity_callback=record("per-tuple")
        )
        for t in workload:
            per_tuple.process(t)
        batched = MSWJOperator(
            [1_000] * 3, CONDITION, productivity_callback=record("batched")
        )
        batched.process_batch(workload)
        per_tuple_calls = [c[1:] for c in calls if c[0] == "per-tuple"]
        batched_calls = [c[1:] for c in calls if c[0] == "batched"]
        assert batched_calls == per_tuple_calls


class TestPlanCache:
    def test_cache_populates_and_reuses_plans(self):
        op = MSWJOperator([1_000] * 3, CONDITION)
        for t in _mswj_workload():
            op.process(t)
        cached_orders = [set(plans) for plans in op._plans]
        assert any(cached_orders)  # plans were built
        # Far fewer distinct plans than probes: the cache actually reuses.
        assert sum(len(p) for p in op._plans) < op.stats.probes

    def test_clearing_cache_every_tuple_changes_nothing(self):
        # Forcing a plan rebuild per trigger (the pre-cache behaviour)
        # must be invisible in the output — the plan depends only on the
        # trigger stream and the policy's order.
        workload = _mswj_workload(seed=13)
        cached = MSWJOperator([1_000] * 3, CONDITION)
        uncached = MSWJOperator([1_000] * 3, CONDITION)
        seq_cached = []
        seq_uncached = []
        for t in workload:
            seq_cached.extend(cached.process(t))
            for plans in uncached._plans:
                plans.clear()
            seq_uncached.extend(uncached.process(t))
        assert _sequence(seq_cached) == _sequence(seq_uncached)
        assert cached.stats.as_dict() == uncached.stats.as_dict()


# ----------------------------------------------------------------------
# single-pipeline level
# ----------------------------------------------------------------------


class TestPipelineBatched:
    def _per_tuple_run(self, dataset, config):
        pipeline = QualityDrivenPipeline(config)
        results = []
        for t in dataset.arrivals():
            results.extend(pipeline.process(t))
        results.extend(pipeline.flush())
        return results, pipeline

    def _batched_run(self, dataset, config, chunk_size):
        pipeline = QualityDrivenPipeline(config)
        results = []
        arrivals = list(dataset.arrivals())
        for chunk in _chunks(arrivals, chunk_size):
            results.extend(pipeline.process_batch(chunk))
        results.extend(pipeline.flush())
        return results, pipeline

    @pytest.mark.parametrize("chunk_size", [1, 7, 256])
    def test_adaptive_run_byte_identical(self, chunk_size):
        # ModelBasedPolicy adapts K at interval boundaries that now fall
        # mid-batch; the sequences must still match byte for byte.
        dataset = _dataset(seed=17)
        expected, ref = self._per_tuple_run(
            dataset, _config(dataset, gamma=0.9, adaptive=True)
        )
        got, pipeline = self._batched_run(
            dataset, _config(dataset, gamma=0.9, adaptive=True), chunk_size
        )
        assert _sequence(got) == _sequence(expected)
        assert pipeline.metrics.k_history == ref.metrics.k_history
        assert pipeline.metrics.tuples_processed == ref.metrics.tuples_processed
        assert pipeline.metrics.results_produced == ref.metrics.results_produced
        assert pipeline.metrics.latency_sum_ms == ref.metrics.latency_sum_ms
        assert pipeline.join.stats.as_dict() == ref.join.stats.as_dict()

    def test_continuous_policy_byte_identical(self):
        # Max-K-slack bumps K on arrivals (mid-batch immediate releases).
        dataset = _dataset(seed=19)
        expected, ref = self._per_tuple_run(
            dataset, _config(dataset, policy=MaxKSlackPolicy())
        )
        got, pipeline = self._batched_run(
            dataset, _config(dataset, policy=MaxKSlackPolicy()), 64
        )
        assert _sequence(got) == _sequence(expected)
        assert pipeline.metrics.k_history == ref.metrics.k_history
        assert pipeline.join.stats.as_dict() == ref.join.stats.as_dict()

    def test_count_only_mode_matches(self):
        dataset = _dataset(seed=23)
        config = _config(dataset, collect=False)
        pipeline = QualityDrivenPipeline(config)
        expected = 0
        for t in dataset.arrivals():
            expected += pipeline.process(t)
        expected += pipeline.flush()
        batched = QualityDrivenPipeline(_config(dataset, collect=False))
        got = batched.process_batch(list(dataset.arrivals()))
        got += batched.flush()
        assert got == expected

    def test_process_batch_after_flush_raises(self):
        dataset = _dataset(duration_s=2)
        pipeline = QualityDrivenPipeline(_config(dataset))
        pipeline.flush()
        with pytest.raises(RuntimeError):
            pipeline.process_batch([StreamTuple(ts=1, values={"a1": 1}, stream=0)])

    def test_empty_batch_is_noop(self):
        dataset = _dataset(duration_s=2)
        pipeline = QualityDrivenPipeline(_config(dataset))
        assert pipeline.process_batch([]) == []
        assert pipeline.metrics.tuples_processed == 0


# ----------------------------------------------------------------------
# partitioned level
# ----------------------------------------------------------------------


class TestPartitionedBatched:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_serial_batched_matches_per_tuple(self, shards):
        dataset = _dataset(seed=29)
        per_tuple, m_ref = run_partitioned(
            dataset, _config(dataset), shards, executor="serial"
        )
        batched, m_got = run_partitioned(
            dataset, _config(dataset), shards, executor="serial", chunk_size=128
        )
        if shards == 1:
            # One shard: no cross-shard interleaving — byte-identical.
            assert _sequence(batched) == _sequence(per_tuple)
        else:
            # Shards>1: each shard's sub-sequence is byte-identical, but
            # within one process_batch call immediate results come back
            # grouped by shard; the ts-sorted stream must agree exactly.
            assert sorted(_sequence(batched)) == sorted(_sequence(per_tuple))
        assert m_got.tuples_processed == m_ref.tuples_processed
        assert m_got.results_produced == m_ref.results_produced
        assert m_got.k_history == m_ref.k_history

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_process_executor_batched_byte_identical(self, shards):
        # Under the process executor every result arrives in the
        # ts-ordered flush merge, so per-tuple and batched feeding give
        # byte-identical end-to-end sequences at any shard count.
        dataset = _dataset(duration_s=8, seed=31)
        per_tuple, _ = run_partitioned(
            dataset, _config(dataset), shards, executor="process", batch_size=64
        )
        batched, _ = run_partitioned(
            dataset,
            _config(dataset),
            shards,
            executor="process",
            batch_size=64,
            chunk_size=128,
        )
        assert _sequence(batched) == _sequence(per_tuple)

    def test_join_statistics_identical_across_drivers(self):
        dataset = _dataset(seed=37)
        from repro import PartitionedPipeline

        def stats_of(chunk_size):
            pipeline = PartitionedPipeline(_config(dataset), 4)
            arrivals = list(dataset.arrivals())
            if chunk_size is None:
                for t in arrivals:
                    pipeline.process(t)
            else:
                for chunk in _chunks(arrivals, chunk_size):
                    pipeline.process_batch(chunk)
            pipeline.flush()
            return pipeline.join_statistics()

        per_tuple = stats_of(None)
        batched = stats_of(128)
        assert batched == per_tuple
        assert per_tuple["results_produced"] > 0

    def test_broadcast_condition_batched_matches(self):
        # Non-partitionable condition: the batch is broadcast to every
        # shard; shard-0 emission must still reproduce the per-tuple run.
        from repro import from_tuple_specs

        specs = [(i % 2, 100 * i, {"a1": i % 5}) for i in range(80)]
        dataset = from_tuple_specs(specs, num_streams=2)
        condition = JoinCondition([BandPredicate(0, "a1", 1, "a1", 1.0)])
        k = dataset.max_delay()
        config = PipelineConfig(
            window_sizes_ms=[seconds(2)] * 2,
            condition=condition,
            gamma=0.95,
            period_ms=seconds(10),
            interval_ms=seconds(1),
            policy=FixedKPolicy(k),
            initial_k_ms=k,
        )
        per_tuple, _ = run_partitioned(dataset, config, 3)
        batched, _ = run_partitioned(dataset, config, 3, chunk_size=16)
        assert per_tuple  # fixture actually joins
        assert sorted(_sequence(batched)) == sorted(_sequence(per_tuple))

    def test_chunk_size_validation(self):
        dataset = _dataset(duration_s=2)
        with pytest.raises(ValueError):
            run_partitioned(dataset, _config(dataset), 2, chunk_size=0)

    def test_partitioned_process_batch_after_flush_raises(self):
        from repro import PartitionedPipeline

        dataset = _dataset(duration_s=2)
        pipeline = PartitionedPipeline(_config(dataset), 2)
        pipeline.flush()
        with pytest.raises(RuntimeError):
            pipeline.process_batch([StreamTuple(ts=1, values={"a1": 1}, stream=0)])
