"""Tests for the experiment harness (repro.experiments) and the CLI."""

import os

import pytest

from repro import seconds
from repro.experiments.configs import (
    PAPER_GAMMA_VALUES,
    d3_experiment,
    d4_experiment,
    soccer_experiment,
)
from repro.experiments.report import format_table, write_report
from repro.experiments.runner import make_policy, run_experiment


def _tiny_d3():
    exp = d3_experiment()
    from repro import make_d3_syn

    exp.dataset_factory = lambda: make_d3_syn(
        duration_ms=seconds(12),
        seed=5,
        inter_arrival_ms=200,
        max_delay_ms=2_000,
        skew_change_interval_ms=(seconds(3), seconds(6)),
    )
    exp.invalidate()
    return exp


class TestExperimentConfig:
    def test_dataset_cached(self):
        exp = _tiny_d3()
        assert exp.dataset() is exp.dataset()

    def test_truth_cached(self):
        exp = _tiny_d3()
        assert exp.truth() is exp.truth()

    def test_invalidate_clears_caches(self):
        exp = _tiny_d3()
        first = exp.dataset()
        exp.invalidate()
        assert exp.dataset() is not first

    def test_num_streams(self):
        assert d3_experiment().num_streams == 3
        assert d4_experiment().num_streams == 4
        assert soccer_experiment().num_streams == 2

    def test_paper_gamma_grid(self):
        assert PAPER_GAMMA_VALUES == (0.9, 0.95, 0.99, 0.999)


class TestMakePolicy:
    def test_known_policies(self):
        assert make_policy("no-k-slack").name == "No-K-slack"
        assert make_policy("max-k-slack").name == "Max-K-slack"
        assert make_policy("model-eqsel").name == "Model-based(EqSel)"
        assert make_policy("model-noneqsel").name == "Model-based(NonEqSel)"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("magic")

    def test_name_normalization(self):
        assert make_policy("  Max-K-Slack ").name == "Max-K-slack"


class TestRunExperiment:
    def test_run_result_fields(self):
        exp = _tiny_d3()
        outcome = run_experiment(
            exp, make_policy("no-k-slack"), gamma=0.9, period_ms=4_000
        )
        assert outcome.experiment == "(D3syn, Q3)"
        assert outcome.policy == "No-K-slack"
        assert outcome.truth_total == exp.truth().index.total
        assert 0.0 <= outcome.overall_recall() <= 1.0
        assert outcome.average_k_s == 0.0
        assert outcome.latency is not None

    def test_measurements_exclude_warmup(self):
        exp = _tiny_d3()
        outcome = run_experiment(
            exp, make_policy("no-k-slack"), gamma=0.9, period_ms=4_000
        )
        assert all(m.at_ms >= 4_000 for m in outcome.measurements)

    def test_runs_are_reproducible(self):
        exp = _tiny_d3()
        a = run_experiment(exp, make_policy("model-eqsel"), gamma=0.9, period_ms=4_000)
        b = run_experiment(exp, make_policy("model-eqsel"), gamma=0.9, period_ms=4_000)
        assert a.results_produced == b.results_produced
        assert a.average_k_s == b.average_k_s


class TestReport:
    def test_format_table_basic(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("x", "y")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.5000" in text  # float formatting

    def test_format_table_column_widths(self):
        text = format_table(["col"], [("wide-cell-content",)])
        header, sep, row = text.splitlines()
        assert len(header) == len(row)

    def test_write_report_creates_file(self, tmp_path):
        path = write_report("unit", "hello", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"


class TestCli:
    def test_cli_main_runs(self, capsys, monkeypatch):
        # Patch the experiment registry to the tiny dataset for speed.
        import repro.experiments.__main__ as cli

        tiny = _tiny_d3()
        monkeypatch.setattr(
            cli, "all_experiments", lambda scale, paper_scale: {"d3": tiny}
        )
        code = cli.main(
            ["--experiment", "d3", "--policy", "no-k-slack", "--gamma", "0.9",
             "--period", "4", "--series"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "average recall" in captured.out
        assert "No-K-slack" in captured.out

    def test_cli_rejects_bad_policy(self):
        import repro.experiments.__main__ as cli

        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["--policy", "nope"])
