"""Unit tests for the Synchronizer, Alg. 1 (repro.core.synchronizer)."""

import pytest

from repro import StreamTuple, Synchronizer


def _t(stream, ts, seq=0):
    return StreamTuple(ts=ts, stream=stream, seq=seq)


def _feed(sync, specs):
    """Feed (stream, ts) pairs; return emitted (stream, ts) pairs in order."""
    out = []
    for seq, (stream, ts) in enumerate(specs):
        out.extend((e.stream, e.ts) for e in sync.process(_t(stream, ts, seq)))
    return out


class TestBuffering:
    def test_waits_for_all_streams(self):
        sync = Synchronizer(2)
        # Only S0 tuples: nothing can be emitted yet.
        assert _feed(sync, [(0, 10), (0, 20)]) == []
        assert sync.buffered == 2

    def test_emits_when_every_stream_present(self):
        sync = Synchronizer(2)
        emitted = _feed(sync, [(0, 10), (0, 20), (1, 15)])
        # Buffer had S0:{10,20}, S1:{15}: min 10 emitted; then S0:{20},
        # S1:{15}: min 15 emitted; then S1 empty → stop.
        assert emitted == [(0, 10), (1, 15)]
        assert sync.buffered == 1
        assert sync.t_sync == 15

    def test_merges_sorted_streams_into_sorted_output(self):
        sync = Synchronizer(2)
        specs = [(0, 10), (1, 5), (0, 20), (1, 15), (0, 30), (1, 25), (1, 35)]
        emitted = _feed(sync, specs)
        timestamps = [ts for _, ts in emitted]
        assert timestamps == sorted(timestamps)

    def test_equal_timestamps_emitted_together(self):
        sync = Synchronizer(2)
        emitted = _feed(sync, [(0, 10), (1, 10), (0, 20), (1, 20)])
        # Each time both streams are present, the full min-ts batch drains.
        assert ([ts for _, ts in emitted]) == [10, 10, 20, 20]

    def test_three_streams_gate_on_slowest(self):
        sync = Synchronizer(3)
        emitted = _feed(sync, [(0, 10), (1, 20)])
        assert emitted == []
        emitted = _feed(sync, [(2, 5)])
        assert emitted == [(2, 5)]


class TestStragglers:
    def test_straggler_forwarded_immediately(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 10), (1, 15)])  # t_sync becomes 15 after drain... 10 then
        t_sync = sync.t_sync
        straggler = _t(0, t_sync - 1, seq=9)
        emitted = sync.process(straggler)
        assert emitted == [straggler]

    def test_straggler_does_not_change_t_sync(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 10), (1, 15)])
        before = sync.t_sync
        sync.process(_t(0, before - 1, seq=9))
        assert sync.t_sync == before

    def test_equal_to_t_sync_is_straggler(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 10), (1, 15)])
        t = _t(0, sync.t_sync, seq=9)
        assert sync.process(t) == [t]


class TestImplicitSlack:
    def test_leading_stream_buffered_by_skew(self):
        """The synchronizer implicitly sorts the leading stream (Sec. III-B).

        S0 leads by a large skew; its out-of-order tuples (within the
        skew) are fixed by the synchronization buffer even with K = 0.
        """
        sync = Synchronizer(2)
        emitted = _feed(
            sync,
            [(0, 100), (0, 90), (0, 110), (1, 10), (1, 120), (1, 130)],
        )
        s0_ts = [ts for stream, ts in emitted if stream == 0]
        assert s0_ts == sorted(s0_ts)


class TestCloseAndFlush:
    def test_closed_stream_stops_gating(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 10), (0, 20)])
        emitted = sync.close_stream(1)
        assert [(e.stream, e.ts) for e in emitted] == [(0, 10), (0, 20)]

    def test_flush_emits_in_timestamp_order(self):
        sync = Synchronizer(3)
        _feed(sync, [(0, 30), (1, 10)])
        flushed = sync.flush()
        assert [e.ts for e in flushed] == [10, 30]
        assert sync.buffered == 0

    def test_flush_advances_t_sync(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 42)])
        sync.flush()
        assert sync.t_sync == 42

    def test_buffered_of_counts_per_stream(self):
        sync = Synchronizer(2)
        _feed(sync, [(0, 10), (0, 20)])
        assert sync.buffered_of(0) == 2
        assert sync.buffered_of(1) == 0


class TestValidation:
    def test_bad_stream_index(self):
        sync = Synchronizer(2)
        with pytest.raises(ValueError):
            sync.process(_t(5, 10))

    def test_positive_stream_count_required(self):
        with pytest.raises(ValueError):
            Synchronizer(0)


class TestCloseStreamValidation:
    def test_out_of_range_index_rejected(self):
        sync = Synchronizer(2)
        with pytest.raises(ValueError):
            sync.close_stream(2)
        with pytest.raises(ValueError):
            sync.close_stream(-1)

    def test_double_close_is_noop(self):
        sync = Synchronizer(2)
        sync.process(_t(0, 10))
        first = sync.close_stream(1)  # unlocks the buffered S0 tuple
        assert [(e.stream, e.ts) for e in first] == [(0, 10)]
        assert sync.close_stream(1) == []
        # With stream 1 closed, process() drains on arrival, so a later
        # re-close has nothing left to unlock either.
        emitted = sync.process(_t(0, 20, seq=1))
        assert [(e.stream, e.ts) for e in emitted] == [(0, 20)]
        assert sync.buffered == 0
        assert sync.close_stream(1) == []


class TestBatchedProcessing:
    def test_batch_equals_per_tuple_emissions(self):
        specs = [(0, 10), (1, 5), (0, 20), (1, 15), (0, 30), (1, 2), (1, 25)]
        per_tuple = Synchronizer(2)
        expected = _feed(per_tuple, specs)
        batched = Synchronizer(2)
        emitted = batched.process_batch(
            [_t(stream, ts, seq) for seq, (stream, ts) in enumerate(specs)]
        )
        assert [(e.stream, e.ts) for e in emitted] == expected
        assert batched.t_sync == per_tuple.t_sync
        assert batched.buffered == per_tuple.buffered

    def test_batch_validates_stream_index(self):
        sync = Synchronizer(2)
        with pytest.raises(ValueError):
            sync.process_batch([_t(0, 10), StreamTuple(ts=20, stream=5)])
