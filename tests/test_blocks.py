"""Columnar block-transport suite: codec round-trips + transport invariance.

Two layers of contract:

* **Codec** — ``decode(encode(batch))`` must reproduce the tuples
  exactly (equality, ``delay``/``arrival`` annotations, attribute
  access) for arbitrary payload shapes: ``None`` values, mixed value
  types, attribute sets that differ across tuples in one block, empty
  batches, unicode attribute names.  Schema negotiation must intern each
  attribute set once per encoder/decoder pair.
* **Transport invariance** — the columnar wire format is a pure
  transport optimization: partitioned runs over block transport must
  produce byte-identical result sequences, ``JoinStatistics`` and merged
  ``PipelineMetrics`` (deterministic fields) versus the object-pickling
  transport and the serial batched engine, at shards 1/2/4, in collected
  and count-only modes.
"""

import multiprocessing
import pickle
import random
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    MISSING,
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    BandPredicate,
    BlockDecoder,
    BlockEncoder,
    FixedKPolicy,
    JoinCondition,
    JoinResult,
    MultiprocessingExecutor,
    PartitionedPipeline,
    PipelineConfig,
    StreamTuple,
    equi_join_chain,
    from_tuple_specs,
    make_d3_syn,
    seconds,
)

CONDITION = equi_join_chain("a1", 3)


def _roundtrip(batch, encoder=None, decoder=None):
    """Encode → pickle (protocol 5, as the pipe does) → decode."""
    encoder = encoder or BlockEncoder()
    decoder = decoder or BlockDecoder()
    block = pickle.loads(pickle.dumps(encoder.encode(batch), protocol=5))
    return decoder.decode(block)


def _assert_tuples_identical(decoded, original):
    assert decoded == original
    for d, o in zip(decoded, original):
        assert d.delay == o.delay
        assert d.arrival == o.arrival
        assert d.values == o.values
        for name, value in o.values.items():
            assert d[name] == value or (value != value)  # NaN-safe access


# ----------------------------------------------------------------------
# codec round-trips
# ----------------------------------------------------------------------


class TestCodecRoundTrip:
    def test_empty_batch(self):
        assert _roundtrip([]) == []

    def test_uniform_payloads(self):
        batch = [
            StreamTuple(ts=i * 10, values={"a1": i % 4, "v": float(i)},
                        stream=i % 3, seq=i, arrival=i * 10 + 3)
            for i in range(50)
        ]
        for t in batch:
            t.delay = t.seq % 7
        _assert_tuples_identical(_roundtrip(batch), batch)

    def test_none_value_distinct_from_missing_attribute(self):
        with_none = StreamTuple(ts=1, values={"a1": 1, "x": None}, stream=0, seq=0)
        without_x = StreamTuple(ts=2, values={"a1": 2}, stream=1, seq=1)
        decoded = _roundtrip([with_none, without_x])
        assert decoded[0].values == {"a1": 1, "x": None}
        assert "x" in decoded[0].values and decoded[0]["x"] is None
        assert "x" not in decoded[1].values
        assert decoded[1].get("x", "absent") == "absent"

    def test_mixed_value_types_and_unicode_keys(self):
        batch = [
            StreamTuple(ts=0, values={"ключ": "значение", "n": 1}, stream=0, seq=0),
            StreamTuple(ts=1, values={"ключ": (1, "two"), "n": 2.5}, stream=1, seq=1),
            StreamTuple(ts=2, values={"ключ": [1, 2], "n": None, "émoji🎯": {"a": 1}},
                        stream=2, seq=2),
        ]
        _assert_tuples_identical(_roundtrip(batch), batch)

    def test_empty_payloads(self):
        batch = [StreamTuple(ts=i, stream=i % 2, seq=i) for i in range(5)]
        _assert_tuples_identical(_roundtrip(batch), batch)

    def test_schema_interned_once_per_attribute_set(self):
        encoder, decoder = BlockEncoder(), BlockDecoder()
        a = [StreamTuple(ts=1, values={"a1": 1, "b": 2}, stream=0, seq=0)]
        b = [StreamTuple(ts=2, values={"b": 3, "a1": 4}, stream=0, seq=1)]
        c = [StreamTuple(ts=3, values={"c": 5}, stream=0, seq=2)]
        first = encoder.encode(a)
        again = encoder.encode(b)  # same attribute *set*, other dict order
        other = encoder.encode(c)
        assert first.attributes is not None  # schema travels inline once
        assert again.attributes is None      # ...then only by id
        assert again.schema_id == first.schema_id
        assert other.schema_id != first.schema_id
        assert decoder.decode(first) == a
        assert decoder.decode(again) == b
        assert decoder.decode(other) == c

    def test_decoder_rejects_unknown_schema(self):
        encoder = BlockEncoder()
        encoder.encode([StreamTuple(ts=1, values={"a1": 1}, stream=0, seq=0)])
        later = encoder.encode([StreamTuple(ts=2, values={"a1": 2}, stream=0, seq=1)])
        assert later.attributes is None
        with pytest.raises(ValueError):
            BlockDecoder().decode(later)  # fresh decoder never saw the schema

    def test_missing_sentinel_pickle_stable(self):
        assert pickle.loads(pickle.dumps(MISSING, protocol=5)) is MISSING

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),  # ts
                st.dictionaries(
                    st.text(min_size=1, max_size=8),
                    st.one_of(
                        st.none(),
                        st.integers(),
                        st.floats(allow_nan=False),
                        st.text(max_size=12),
                        st.tuples(st.integers(), st.text(max_size=4)),
                    ),
                    max_size=5,
                ),
                st.integers(min_value=0, max_value=4),       # stream
                st.integers(min_value=-500, max_value=500),  # delay
            ),
            max_size=40,
        )
    )
    def test_property_roundtrip(self, rows):
        batch = []
        for seq, (ts, values, stream, delay) in enumerate(rows):
            t = StreamTuple(ts=ts, values=values, stream=stream, seq=seq,
                            arrival=ts + max(0, delay))
            t.delay = delay
            batch.append(t)
        _assert_tuples_identical(_roundtrip(batch), batch)


class TestResultBlock:
    def _results(self, num=30, share=3):
        rng = random.Random(11)
        pool = [
            StreamTuple(ts=i * 5, values={"a1": i % share, "v": i},
                        stream=i % 3, seq=i)
            for i in range(12)
        ]
        results = []
        for i in range(num):
            comps = tuple(
                pool[rng.randrange(len(pool))] for _ in range(3)
            )
            results.append(JoinResult(max(c.ts for c in comps), comps))
        return results

    def test_roundtrip_preserves_results(self):
        results = self._results()
        encoder, decoder = BlockEncoder(), BlockDecoder()
        block = pickle.loads(
            pickle.dumps(encoder.encode_results(results), protocol=5)
        )
        decoded = decoder.decode_results(block)
        assert decoded == results
        assert [r.ts for r in decoded] == [r.ts for r in results]

    def test_component_sharing_restored(self):
        # One window tuple feeding many results must decode to ONE object
        # shared across those results, as the operator produced it.
        results = self._results()
        block = BlockEncoder().encode_results(results)
        assert len(block.components) < 3 * len(results)  # interning happened
        decoded = BlockDecoder().decode_results(block)
        seen = {}
        for r in decoded:
            for c in r.components:
                key = c.identity()
                if key in seen:
                    assert c is seen[key]
                else:
                    seen[key] = c

    def test_empty_results(self):
        block = BlockEncoder().encode_results([])
        assert BlockDecoder().decode_results(block) == []


# ----------------------------------------------------------------------
# transport invariance (acceptance: byte-identical sequences/stats/metrics)
# ----------------------------------------------------------------------


def _dataset(duration_s=8, seed=31):
    return make_d3_syn(
        duration_ms=seconds(duration_s), seed=seed, inter_arrival_ms=50
    )


def _config(dataset, collect=True, adaptive=False):
    k = dataset.max_delay()
    if adaptive:
        policy, initial_k = None, 0
    else:
        policy, initial_k = FixedKPolicy(k), k
    return PipelineConfig(
        window_sizes_ms=[seconds(2)] * 3,
        condition=CONDITION,
        gamma=0.9,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=policy,
        initial_k_ms=initial_k,
        collect_results=collect,
    )


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start : start + size]


def _sequence(results):
    return [(r.ts, r.key()) for r in results]


def _metric_fields(metrics):
    """The deterministic fields of merged PipelineMetrics (wall-clock
    ``adaptation_seconds`` excluded)."""
    return {
        "k_history": metrics.k_history,
        "shard_k_histories": metrics.shard_k_histories,
        "adaptations": metrics.adaptations,
        "results_produced": metrics.results_produced,
        "tuples_processed": metrics.tuples_processed,
        "latency_sum_ms": metrics.latency_sum_ms,
        "latency_count": metrics.latency_count,
        "latency_max_ms": metrics.latency_max_ms,
    }


def _run(dataset, config, shards, executor="serial",
         transport=TRANSPORT_BLOCKS, chunk_size=128, per_tuple=False):
    """Drive a PartitionedPipeline; return (outputs, metrics, join stats)."""
    pipeline = PartitionedPipeline(
        config, shards, executor=executor, batch_size=64, transport=transport
    )
    collect = config.collect_results
    outputs = [] if collect else 0
    with pipeline:
        arrivals = list(dataset.arrivals())
        if per_tuple:
            for t in arrivals:
                produced = pipeline.process(t)
                outputs = outputs + produced if not collect else outputs
                if collect:
                    outputs.extend(produced)
        else:
            for chunk in _chunks(arrivals, chunk_size):
                produced = pipeline.process_batch(chunk)
                if collect:
                    outputs.extend(produced)
                else:
                    outputs += produced
        final = pipeline.flush()
        if collect:
            outputs.extend(final)
        else:
            outputs += final
        return outputs, pipeline.metrics, pipeline.join_statistics()


class TestTransportInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_blocks_byte_identical_to_object_transport(self, shards):
        dataset = _dataset()
        blocks, m_blocks, s_blocks = _run(
            dataset, _config(dataset), shards, executor="process",
            transport=TRANSPORT_BLOCKS,
        )
        objects, m_objects, s_objects = _run(
            dataset, _config(dataset), shards, executor="process",
            transport=TRANSPORT_OBJECTS,
        )
        assert _sequence(blocks) == _sequence(objects)
        assert s_blocks == s_objects
        assert _metric_fields(m_blocks) == _metric_fields(m_objects)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_blocks_match_serial_batched_engine(self, shards):
        dataset = _dataset()
        serial, m_serial, s_serial = _run(
            dataset, _config(dataset), shards, executor="serial"
        )
        blocks, m_blocks, s_blocks = _run(
            dataset, _config(dataset), shards, executor="process",
            transport=TRANSPORT_BLOCKS,
        )
        # Serial returns immediate results in per-shard production order;
        # the process executor defers everything to flush, which emits
        # the canonical (ts, key) order — identical multiset, and equal
        # sequences once both sides are canonicalized.
        assert sorted(_sequence(blocks)) == sorted(_sequence(serial))
        # Everything arrives at flush under the process executor, so its
        # whole sequence is the canonical order itself.
        assert _sequence(blocks) == sorted(_sequence(blocks))
        assert s_blocks == s_serial
        assert _metric_fields(m_blocks) == _metric_fields(m_serial)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_count_only_mode(self, shards):
        dataset = _dataset(seed=37)
        serial, m_serial, s_serial = _run(
            dataset, _config(dataset, collect=False), shards, executor="serial"
        )
        blocks, m_blocks, s_blocks = _run(
            dataset, _config(dataset, collect=False), shards,
            executor="process", transport=TRANSPORT_BLOCKS,
        )
        objects, _, s_objects = _run(
            dataset, _config(dataset, collect=False), shards,
            executor="process", transport=TRANSPORT_OBJECTS,
        )
        assert blocks == serial == objects
        assert s_blocks == s_serial == s_objects
        assert _metric_fields(m_blocks) == _metric_fields(m_serial)

    def test_adaptive_run_k_trajectories_identical(self):
        # ModelBasedPolicy adapts K per shard; the transport must not
        # perturb a single adaptation decision.
        dataset = _dataset(seed=43)
        blocks, m_blocks, s_blocks = _run(
            dataset, _config(dataset, adaptive=True), 2, executor="process",
            transport=TRANSPORT_BLOCKS,
        )
        objects, m_objects, s_objects = _run(
            dataset, _config(dataset, adaptive=True), 2, executor="process",
            transport=TRANSPORT_OBJECTS,
        )
        assert _sequence(blocks) == _sequence(objects)
        assert s_blocks == s_objects
        assert _metric_fields(m_blocks) == _metric_fields(m_objects)

    def test_per_tuple_submission_over_blocks(self):
        # The submit() accumulation path (process() driver) must encode
        # the same blocks the batched driver does.
        dataset = _dataset(duration_s=6, seed=47)
        per_tuple, _, s_pt = _run(
            dataset, _config(dataset), 2, executor="process",
            transport=TRANSPORT_BLOCKS, per_tuple=True,
        )
        batched, _, s_b = _run(
            dataset, _config(dataset), 2, executor="process",
            transport=TRANSPORT_BLOCKS,
        )
        assert _sequence(per_tuple) == _sequence(batched)
        assert s_pt == s_b

    def test_broadcast_condition_over_blocks(self):
        # Non-partitionable condition: every shard receives the full
        # burst; shard-0 emission must reproduce the serial run.
        specs = [(i % 2, 100 * i, {"a1": i % 5}) for i in range(80)]
        dataset = from_tuple_specs(specs, num_streams=2)
        condition = JoinCondition([BandPredicate(0, "a1", 1, "a1", 1.0)])
        k = dataset.max_delay()
        config = PipelineConfig(
            window_sizes_ms=[seconds(2)] * 2,
            condition=condition,
            gamma=0.95,
            period_ms=seconds(10),
            interval_ms=seconds(1),
            policy=FixedKPolicy(k),
            initial_k_ms=k,
        )
        serial, _, s_serial = _run(dataset, config, 3, executor="serial")
        blocks, _, s_blocks = _run(
            dataset, config, 3, executor="process", transport=TRANSPORT_BLOCKS
        )
        assert serial  # fixture actually joins
        assert sorted(_sequence(blocks)) == sorted(_sequence(serial))
        assert s_blocks == s_serial

    def test_rejects_unknown_transport(self):
        dataset = _dataset(duration_s=2)
        with pytest.raises(ValueError):
            MultiprocessingExecutor(_config(dataset), 2, transport="carrier-pigeon")


# ----------------------------------------------------------------------
# executor lifecycle (startup-failure unwind)
# ----------------------------------------------------------------------


class TestExecutorStartupFailure:
    def test_partial_startup_is_unwound(self, monkeypatch):
        """If Process.start() raises mid-loop, the already-started
        workers and their pipe fds must be released, not leaked."""
        real = multiprocessing.get_context("fork")
        started = []

        class FailingSecondStart(real.Process):
            def start(self):
                if started:
                    raise OSError("simulated fork failure")
                super().start()
                started.append(self)

        fake = types.SimpleNamespace(Pipe=real.Pipe, Process=FailingSecondStart)
        import repro.parallel.executors as executors_module

        monkeypatch.setattr(
            executors_module.multiprocessing, "get_context", lambda m: fake
        )
        dataset = _dataset(duration_s=2)
        with pytest.raises(OSError):
            MultiprocessingExecutor(_config(dataset), 3)
        assert len(started) == 1
        started[0].join(timeout=10)
        assert not started[0].is_alive()

    def test_close_idempotent_after_failure_and_normal_use(self):
        dataset = _dataset(duration_s=2)
        executor = MultiprocessingExecutor(_config(dataset), 2)
        executor.close()
        executor.close()  # second close is a no-op
        with pytest.raises(RuntimeError):
            executor.submit(0, StreamTuple(ts=1, values={"a1": 1}, stream=0))
