"""Unit tests for latency summaries (repro.quality.latency)."""

import pytest

from repro.core.pipeline import PipelineMetrics
from repro.quality.latency import (
    LatencySummary,
    summarize_latency,
    time_weighted_average,
)


class TestTimeWeightedAverage:
    def test_single_segment(self):
        assert time_weighted_average([(0, 10.0)], 100) == pytest.approx(10.0)

    def test_two_equal_segments(self):
        history = [(0, 0.0), (50, 100.0)]
        assert time_weighted_average(history, 100) == pytest.approx(50.0)

    def test_unequal_segments(self):
        history = [(0, 10.0), (90, 100.0)]
        # 10 for 90 time units, 100 for 10 units → 19.0
        assert time_weighted_average(history, 100) == pytest.approx(19.0)

    def test_empty_history(self):
        assert time_weighted_average([], 100) == 0.0

    def test_zero_span_returns_last_value(self):
        assert time_weighted_average([(5, 42.0)], 5) == pytest.approx(42.0)


class TestSummarizeLatency:
    def _metrics(self):
        metrics = PipelineMetrics()
        metrics.k_history = [(0, 0), (1_000, 2_000), (2_000, 500)]
        metrics.latency_sum_ms = 9_000
        metrics.latency_count = 3
        metrics.latency_max_ms = 5_000
        return metrics

    def test_summary_fields(self):
        summary = summarize_latency(self._metrics(), end_time_ms=3_000)
        assert isinstance(summary, LatencySummary)
        # avg K: 0 for 1s, 2000 for 1s, 500 for 1s → 833.3 ms
        assert summary.average_k_s == pytest.approx(0.8333, abs=1e-3)
        assert summary.final_k_s == pytest.approx(0.5)
        assert summary.max_k_s == pytest.approx(2.0)
        assert summary.average_buffering_latency_s == pytest.approx(3.0)
        assert summary.max_buffering_latency_s == pytest.approx(5.0)
        assert summary.k_changes == 2

    def test_row_shape(self):
        summary = summarize_latency(self._metrics(), end_time_ms=3_000)
        row = summary.row()
        assert len(row) == 4
        assert row[0] == summary.average_k_s

    def test_empty_metrics(self):
        summary = summarize_latency(PipelineMetrics())
        assert summary.average_k_s == 0.0
        assert summary.k_changes == 0
