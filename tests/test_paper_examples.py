"""Worked examples from the paper's figures (Fig. 1, Fig. 3, Fig. 5).

These tests pin the framework's behaviour to the scenarios the paper uses
to motivate and explain the approach.  Fig. 3 is covered in
``test_kslack.py``; here we cover the Fig. 1 join effects and the Fig. 5
selectivity effects.
"""

import pytest

from repro import (
    EquiPredicate,
    FixedKPolicy,
    JoinCondition,
    MSWJOperator,
    NoKSlackPolicy,
    PipelineConfig,
    QualityDrivenPipeline,
    StreamTuple,
    from_tuple_specs,
)


def _letter_condition():
    return JoinCondition([EquiPredicate(0, "letter", 1, "letter")])


def _fig1_dataset():
    """The Fig. 1 scenario: W1 = W2 = 2 time units (ms here).

    S1 (capitals): A1 B3 E5 B6 C4 B7 D8 — C4 is out of order.
    S2 (lowercase): b2 c3 a4 e5 d6 e7 — e7 arrives after D8.
    True results: (B3,b2)@3 (C4,c3)@4 (E5,e5)@5 (E5,e7)@7 (D8,d6)@8.
    """
    specs = [
        (0, 1, {"letter": "a"}),   # A1
        (1, 2, {"letter": "b"}),   # b2
        (0, 3, {"letter": "b"}),   # B3
        (1, 3, {"letter": "c"}),   # c3
        (1, 4, {"letter": "a"}),   # a4
        (0, 5, {"letter": "e"}),   # E5
        (1, 5, {"letter": "e"}),   # e5
        (0, 6, {"letter": "b"}),   # B6
        (0, 4, {"letter": "c"}),   # C4  (out of order in S1)
        (1, 6, {"letter": "d"}),   # d6
        (0, 7, {"letter": "b"}),   # B7
        (0, 8, {"letter": "d"}),   # D8
        (1, 7, {"letter": "e"}),   # e7  (arrives after D8)
    ]
    return from_tuple_specs(specs, num_streams=2, name="fig1")


def _run_pipeline(dataset, policy, initial_k=0):
    pipeline = QualityDrivenPipeline(
        PipelineConfig(
            window_sizes_ms=[2, 2],
            condition=_letter_condition(),
            gamma=0.9,
            period_ms=100,
            interval_ms=100,
            basic_window_ms=1,
            granularity_ms=1,
            policy=policy,
            initial_k_ms=initial_k,
        )
    )
    results = []
    for t in dataset.arrivals():
        results.extend(pipeline.process(t))
    results.extend(pipeline.flush())
    return results


def _labels(results):
    def label(r):
        a, b = r.components
        return (a["letter"].upper() + str(a.ts), b["letter"] + str(b.ts))

    return {(label(r), r.ts) for r in results}


FIG1_TRUE_RESULTS = {
    (("B3", "b2"), 3),
    (("C4", "c3"), 4),
    (("E5", "e5"), 5),
    (("E5", "e7"), 7),
    (("D8", "d6"), 8),
}


class TestFig1:
    def test_complete_disorder_handling_recovers_all_results(self):
        ds = _fig1_dataset()
        results = _run_pipeline(ds, FixedKPolicy(10), initial_k=10)
        assert _labels(results) == FIG1_TRUE_RESULTS

    def test_complete_handling_output_is_ordered(self):
        ds = _fig1_dataset()
        results = _run_pipeline(ds, FixedKPolicy(10), initial_k=10)
        timestamps = [r.ts for r in results]
        assert timestamps == sorted(timestamps)

    def test_no_handling_misses_c4_result(self):
        ds = _fig1_dataset()
        results = _run_pipeline(ds, NoKSlackPolicy())
        produced = _labels(results)
        assert (("C4", "c3"), 4) not in produced  # the figure's missed result
        assert produced < FIG1_TRUE_RESULTS  # strict subset: quality loss

    def test_no_handling_still_finds_punctual_results(self):
        ds = _fig1_dataset()
        results = _run_pipeline(ds, NoKSlackPolicy())
        assert (("B3", "b2"), 3) in _labels(results)


class TestFig5:
    """Selectivity under out-of-order arrivals (paper Fig. 5, Sec. IV-B)."""

    def _run_operator(self, arrival_specs):
        """Feed the join operator directly; return (results, sel numerator/denominator)."""
        records = []
        op = MSWJOperator(
            [3, 3],
            _letter_condition(),
            productivity_callback=lambda t, nx, non, ok: records.append(
                (nx, non, ok)
            ),
        )
        results = []
        for stream, ts, letter in arrival_specs:
            t = StreamTuple(ts=ts, values={"letter": letter}, stream=stream, seq=ts)
            results.extend(op.process(t))
        cross = sum(nx for nx, _, ok in records if ok)
        on = sum(non for _, non, ok in records if ok)
        return results, on, cross

    def test_in_order_selectivity_one_third(self):
        # Arrival (a): A1 b1 B2 b2 C3 b3 — selectivity 3/9 = 1/3.
        results, on, cross = self._run_operator(
            [
                (0, 1, "a"),
                (1, 1, "b"),
                (0, 2, "b"),
                (1, 2, "b"),
                (0, 3, "c"),
                (1, 3, "b"),
            ]
        )
        assert len(results) == 3
        assert on / cross == pytest.approx(1 / 3)

    def test_out_of_order_b2_loses_all_results(self):
        # Case (b): B2 reaches the join out of order → it never probes, and
        # the b-tuples that arrive later find no B2 in the window scope
        # probe-wise... B2 is inserted, so later b tuples still match it.
        results, on, cross = self._run_operator(
            [
                (0, 1, "a"),
                (1, 1, "b"),
                (1, 2, "b"),
                (0, 3, "c"),
                (0, 2, "b"),  # out of order: skipped probe, inserted
                (1, 3, "b"),  # still joins with the inserted B2
            ]
        )
        # (B2,b1) and (B2,b2) are lost; (B2,b3) survives via insertion.
        assert len(results) == 1
        assert on / cross < 1 / 3

    def test_selectivity_differs_from_ideal_under_disorder(self):
        # The point of Fig. 5: sel(K) != sel in general.  Compare the two
        # runs' observed selectivities.
        __, on_a, cross_a = self._run_operator(
            [
                (0, 1, "a"),
                (1, 1, "b"),
                (0, 2, "b"),
                (1, 2, "b"),
                (0, 3, "c"),
                (1, 3, "b"),
            ]
        )
        __, on_b, cross_b = self._run_operator(
            [
                (0, 1, "a"),
                (1, 1, "b"),
                (1, 2, "b"),
                (0, 3, "c"),
                (0, 2, "b"),
                (1, 3, "b"),
            ]
        )
        assert on_a / cross_a != on_b / cross_b
