"""Unit tests for the join condition algebra (repro.join.conditions)."""

import pytest

from repro import (
    BandPredicate,
    EquiPredicate,
    JoinCondition,
    StreamTuple,
    ThetaPredicate,
    equi_join_chain,
    star_equi_join,
)


def _t(stream, **values):
    return StreamTuple(ts=0, values=values, stream=stream)


class TestEquiPredicate:
    def test_evaluate_match(self):
        p = EquiPredicate(0, "a", 1, "b")
        assert p.evaluate({0: _t(0, a=5), 1: _t(1, b=5)})

    def test_evaluate_mismatch(self):
        p = EquiPredicate(0, "a", 1, "b")
        assert not p.evaluate({0: _t(0, a=5), 1: _t(1, b=6)})

    def test_streams_property(self):
        assert EquiPredicate(0, "a", 2, "a").streams == frozenset({0, 2})

    def test_side_for_both_directions(self):
        p = EquiPredicate(0, "a", 1, "b")
        assert p.side_for(0) == ("a", 1, "b")
        assert p.side_for(1) == ("b", 0, "a")

    def test_side_for_unreferenced_stream(self):
        with pytest.raises(ValueError):
            EquiPredicate(0, "a", 1, "b").side_for(2)

    def test_same_stream_rejected(self):
        with pytest.raises(ValueError):
            EquiPredicate(0, "a", 0, "b")


class TestBandPredicate:
    def test_within_band(self):
        p = BandPredicate(0, "x", 1, "x", band=2.0)
        assert p.evaluate({0: _t(0, x=10), 1: _t(1, x=12)})

    def test_outside_band(self):
        p = BandPredicate(0, "x", 1, "x", band=2.0)
        assert not p.evaluate({0: _t(0, x=10), 1: _t(1, x=13)})

    def test_band_is_inclusive(self):
        p = BandPredicate(0, "x", 1, "x", band=3)
        assert p.evaluate({0: _t(0, x=0), 1: _t(1, x=3)})

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            BandPredicate(0, "x", 1, "x", band=-1)


class TestThetaPredicate:
    def test_arbitrary_function(self):
        p = ThetaPredicate((0, 1), lambda a, b: a["x"] * b["x"] > 10)
        assert p.evaluate({0: _t(0, x=3), 1: _t(1, x=4)})
        assert not p.evaluate({0: _t(0, x=1), 1: _t(1, x=4)})

    def test_argument_order_matches_streams(self):
        p = ThetaPredicate((1, 0), lambda b, a: b["x"] - a["x"] == 1)
        assert p.evaluate({0: _t(0, x=1), 1: _t(1, x=2)})

    def test_duplicate_streams_rejected(self):
        with pytest.raises(ValueError):
            ThetaPredicate((0, 0), lambda a, b: True)

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            ThetaPredicate((), lambda: True)


class TestJoinCondition:
    def test_cross_join(self):
        c = JoinCondition()
        assert c.is_cross_join
        assert c.evaluate({})

    def test_conjunction_requires_all(self):
        c = JoinCondition(
            [EquiPredicate(0, "a", 1, "a"), EquiPredicate(1, "b", 2, "b")]
        )
        bound = {0: _t(0, a=1), 1: _t(1, a=1, b=2), 2: _t(2, b=2)}
        assert c.evaluate(bound)
        bound[2] = _t(2, b=99)
        assert not c.evaluate(bound)

    def test_referenced_streams(self):
        c = JoinCondition([EquiPredicate(0, "a", 2, "a")])
        assert c.referenced_streams() == frozenset({0, 2})

    def test_indexed_attributes_deduplicated(self):
        c = JoinCondition(
            [EquiPredicate(0, "a", 1, "a"), EquiPredicate(0, "a", 2, "a")]
        )
        assert c.indexed_attributes(0) == ["a"]
        assert c.indexed_attributes(1) == ["a"]

    def test_theta_predicates_not_indexed(self):
        c = JoinCondition([ThetaPredicate((0, 1), lambda a, b: True)])
        assert c.indexed_attributes(0) == []

    def test_equi_lookups_only_for_bound_streams(self):
        c = JoinCondition(
            [EquiPredicate(0, "a", 1, "a"), EquiPredicate(1, "b", 2, "b")]
        )
        assert c.equi_lookups(1, frozenset({0})) == [("a", 0, "a")]
        assert c.equi_lookups(1, frozenset({0, 2})) == [
            ("a", 0, "a"),
            ("b", 2, "b"),
        ]
        assert c.equi_lookups(1, frozenset()) == []

    def test_predicates_closed_by(self):
        p01 = EquiPredicate(0, "a", 1, "a")
        p12 = EquiPredicate(1, "b", 2, "b")
        c = JoinCondition([p01, p12])
        # Binding stream 1 with only 0 bound closes p01 but not p12.
        assert c.predicates_closed_by(1, frozenset({0})) == [p01]
        # Binding stream 2 afterwards closes p12.
        assert c.predicates_closed_by(2, frozenset({0, 1})) == [p12]

    def test_predicates_closed_by_excludes_already_closed(self):
        p01 = EquiPredicate(0, "a", 1, "a")
        c = JoinCondition([p01])
        # Binding stream 2 does not re-close p01.
        assert c.predicates_closed_by(2, frozenset({0, 1})) == []


class TestConditionFactories:
    def test_equi_join_chain_shape(self):
        c = equi_join_chain("a1", 3)
        assert len(c.predicates) == 2
        assert c.referenced_streams() == frozenset({0, 1, 2})

    def test_chain_semantics_transitive_match(self):
        c = equi_join_chain("a1", 3)
        bound = {i: _t(i, a1=7) for i in range(3)}
        assert c.evaluate(bound)
        bound[2] = _t(2, a1=8)
        assert not c.evaluate(bound)

    def test_star_equi_join_shape(self):
        c = star_equi_join(0, {1: "a1", 2: "a2", 3: "a3"})
        assert len(c.predicates) == 3
        assert c.indexed_attributes(0) == ["a1", "a2", "a3"]
        assert c.indexed_attributes(2) == ["a2"]

    def test_star_semantics(self):
        c = star_equi_join(0, {1: "a1", 2: "a2"})
        bound = {
            0: _t(0, a1=1, a2=2),
            1: _t(1, a1=1),
            2: _t(2, a2=2),
        }
        assert c.evaluate(bound)
        bound[1] = _t(1, a1=9)
        assert not c.evaluate(bound)
