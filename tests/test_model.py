"""Unit tests for the recall model, Eqs. 1–5 (repro.core.model).

The optimized implementation (cumulative + strided prefix sums) is checked
against a direct brute-force evaluation of the paper's equations.
"""

import random

import pytest

from repro import CumulativePdf, RecallModel, StreamModelInput


# ----------------------------------------------------------------------
# brute-force references
# ----------------------------------------------------------------------

def brute_cdf(pdf, x):
    if x < 0:
        return 0.0
    return min(1.0, sum(pdf[: x + 1]))


def brute_window_cardinality(pdf, slack_ms, rate, window_ms, b, g):
    """Direct evaluation of Eq. 3 (summed over segments)."""
    n = (window_ms + b - 1) // b
    total = 0.0
    for segment in range(1, n):  # segments 1 .. n-1
        total += b * brute_cdf(pdf, (slack_ms + (segment - 1) * b) // g)
    total += (window_ms - (n - 1) * b) * brute_cdf(pdf, (slack_ms + (n - 1) * b) // g)
    return rate * total


def brute_gamma(inputs, k_ms, b, g, sel_ratio=1.0):
    """Direct evaluation of Eq. 5 via Eqs. 1 and 4."""
    true_rate = 0.0
    prod_rate = 0.0
    for i, s in enumerate(inputs):
        t = s.rate_per_ms
        p = s.rate_per_ms * brute_cdf(s.pdf, (k_ms + int(s.ksync_ms)) // g)
        for j, other in enumerate(inputs):
            if j == i:
                continue
            t *= other.rate_per_ms * other.window_ms
            p *= brute_window_cardinality(
                other.pdf, k_ms + int(other.ksync_ms), other.rate_per_ms,
                other.window_ms, b, g,
            )
        true_rate += t
        prod_rate += p
    if true_rate <= 0:
        return 1.0
    return max(0.0, min(1.0, sel_ratio * prod_rate / true_rate))


def _random_pdf(rng, size):
    weights = [rng.random() for _ in range(size)]
    total = sum(weights)
    return [w / total for w in weights]


# ----------------------------------------------------------------------
# CumulativePdf
# ----------------------------------------------------------------------

class TestCumulativePdf:
    def test_cdf_values(self):
        c = CumulativePdf([0.5, 0.3, 0.2])
        assert c.cdf(0) == pytest.approx(0.5)
        assert c.cdf(1) == pytest.approx(0.8)
        assert c.cdf(2) == pytest.approx(1.0)

    def test_cdf_out_of_range(self):
        c = CumulativePdf([0.5, 0.5])
        assert c.cdf(-1) == 0.0
        assert c.cdf(100) == pytest.approx(1.0)

    def test_empty_pdf_rejected(self):
        with pytest.raises(ValueError):
            CumulativePdf([])

    @pytest.mark.parametrize("step", [1, 2, 3, 7])
    def test_strided_sum_matches_direct(self, step):
        rng = random.Random(step)
        pdf = _random_pdf(rng, 37)
        c = CumulativePdf(pdf)
        for start in (0, 1, 5, 20, 36, 40, 100):
            for terms in (0, 1, 2, 10, 50):
                direct = sum(
                    brute_cdf(pdf, start + l * step) for l in range(terms)
                )
                assert c.strided_sum(start, step, terms) == pytest.approx(direct)

    def test_strided_sum_negative_start(self):
        pdf = [0.25, 0.25, 0.5]
        c = CumulativePdf(pdf)
        direct = sum(brute_cdf(pdf, -3 + l * 2) for l in range(6))
        assert c.strided_sum(-3, 2, 6) == pytest.approx(direct)

    def test_strided_sum_zero_terms(self):
        assert CumulativePdf([1.0]).strided_sum(0, 1, 0) == 0.0

    def test_strided_sum_invalid_step(self):
        with pytest.raises(ValueError):
            CumulativePdf([1.0]).strided_sum(0, 0, 3)


# ----------------------------------------------------------------------
# RecallModel
# ----------------------------------------------------------------------

def _inputs(m=2, rate=0.02, window=2_000, pdf=None, ksync=0.0):
    pdf = pdf if pdf is not None else [0.7, 0.1, 0.1, 0.1]
    return [
        StreamModelInput(pdf=list(pdf), ksync_ms=ksync, rate_per_ms=rate, window_ms=window)
        for _ in range(m)
    ]


class TestRecallModelBasics:
    def test_needs_two_streams(self):
        with pytest.raises(ValueError):
            RecallModel(_inputs(m=2)[:1], 10, 10)

    def test_invalid_b_or_g(self):
        with pytest.raises(ValueError):
            RecallModel(_inputs(), 0, 10)
        with pytest.raises(ValueError):
            RecallModel(_inputs(), 10, -1)

    def test_in_order_probability_grows_with_k(self):
        model = RecallModel(_inputs(), basic_window_ms=10, granularity_ms=10)
        probabilities = [model.in_order_probability(0, k) for k in (0, 10, 20, 30)]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] == pytest.approx(0.7)
        assert probabilities[-1] == pytest.approx(1.0)

    def test_ksync_adds_to_slack(self):
        inputs = _inputs(ksync=20.0)
        model = RecallModel(inputs, basic_window_ms=10, granularity_ms=10)
        # slack = 0 + 20 → two buckets of pre-shift: cdf(2) = 0.9
        assert model.in_order_probability(0, 0) == pytest.approx(0.9)

    def test_true_result_rate_two_way_formula(self):
        inputs = [
            StreamModelInput(pdf=[1.0], ksync_ms=0, rate_per_ms=0.01, window_ms=1_000),
            StreamModelInput(pdf=[1.0], ksync_ms=0, rate_per_ms=0.02, window_ms=3_000),
        ]
        model = RecallModel(inputs, 10, 10)
        expected = 0.01 * (0.02 * 3_000) + 0.02 * (0.01 * 1_000)
        assert model.true_result_rate() == pytest.approx(expected)

    def test_gamma_is_one_for_in_order_streams(self):
        inputs = _inputs(pdf=[1.0])
        model = RecallModel(inputs, 10, 10)
        assert model.gamma(0) == pytest.approx(1.0)

    def test_gamma_reaches_one_at_large_k(self):
        model = RecallModel(_inputs(), 10, 10)
        assert model.gamma(1_000) == pytest.approx(1.0)

    def test_gamma_monotone_in_k(self):
        model = RecallModel(_inputs(m=3), 10, 10)
        gammas = [model.gamma(k) for k in range(0, 200, 10)]
        assert all(a <= b + 1e-12 for a, b in zip(gammas, gammas[1:]))

    def test_gamma_bounded(self):
        model = RecallModel(_inputs(), 10, 10)
        for k in (0, 10, 50, 10_000):
            assert 0.0 <= model.gamma(k, sel_ratio=5.0) <= 1.0

    def test_gamma_scales_with_sel_ratio(self):
        model = RecallModel(_inputs(), 10, 10)
        low = model.gamma(0, sel_ratio=0.5)
        high = model.gamma(0, sel_ratio=1.0)
        assert low == pytest.approx(high * 0.5, rel=1e-9)

    def test_zero_rate_gives_gamma_one(self):
        inputs = _inputs(rate=0.0)
        model = RecallModel(inputs, 10, 10)
        assert model.gamma(0) == 1.0

    def test_estimated_true_results_linear_in_interval(self):
        model = RecallModel(_inputs(), 10, 10)
        assert model.estimated_true_results(2_000) == pytest.approx(
            2 * model.estimated_true_results(1_000)
        )


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "b,g",
        [(10, 10), (10, 1), (10, 5), (100, 10), (10, 100), (10, 1000), (30, 7)],
    )
    def test_window_cardinality_matches_brute_force(self, b, g):
        rng = random.Random(b * 1_000 + g)
        pdf = _random_pdf(rng, 25)
        s = StreamModelInput(pdf=pdf, ksync_ms=35.0, rate_per_ms=0.015, window_ms=730)
        model = RecallModel([s, s], basic_window_ms=b, granularity_ms=g)
        for k in (0, g, 3 * g, 17 * g):
            expected = brute_window_cardinality(
                pdf, k + 35, 0.015, 730, b, g
            )
            assert model.expected_window_cardinality(0, k) == pytest.approx(expected)

    @pytest.mark.parametrize("m", [2, 3, 4])
    @pytest.mark.parametrize("b,g", [(10, 10), (10, 100), (50, 10)])
    def test_gamma_matches_brute_force(self, m, b, g):
        rng = random.Random(m * 10_000 + b * 100 + g)
        inputs = []
        for _ in range(m):
            inputs.append(
                StreamModelInput(
                    pdf=_random_pdf(rng, rng.randint(5, 40)),
                    ksync_ms=rng.choice([0.0, 12.0, 57.0]),
                    rate_per_ms=rng.uniform(0.005, 0.05),
                    window_ms=rng.choice([500, 1_000, 2_050]),
                )
            )
        model = RecallModel(inputs, basic_window_ms=b, granularity_ms=g)
        for k in (0, g, 5 * g, 40 * g):
            assert model.gamma(k) == pytest.approx(
                brute_gamma(inputs, k, b, g), rel=1e-9
            )

    def test_single_segment_window_counts_only_in_order(self):
        # b >= W → n=1: the estimate must reduce to r*W*f(0) (paper note).
        pdf = [0.6, 0.4]
        s = StreamModelInput(pdf=pdf, ksync_ms=0, rate_per_ms=0.01, window_ms=100)
        model = RecallModel([s, s], basic_window_ms=500, granularity_ms=10)
        assert model.expected_window_cardinality(0, 0) == pytest.approx(
            0.01 * 100 * 0.6
        )
