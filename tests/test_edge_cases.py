"""Failure-injection and pathological-input tests across the framework."""

import pytest

from repro import (
    EquiPredicate,
    JoinCondition,
    KSlackBuffer,
    MSWJOperator,
    ModelBasedPolicy,
    NoKSlackPolicy,
    NonEqSel,
    PipelineConfig,
    QualityDrivenPipeline,
    StreamTuple,
    Synchronizer,
    from_tuple_specs,
)


def _equi_config(**overrides):
    kwargs = dict(
        window_sizes_ms=[1_000, 1_000],
        condition=JoinCondition([EquiPredicate(0, "v", 1, "v")]),
        gamma=0.9,
        period_ms=5_000,
        interval_ms=1_000,
    )
    kwargs.update(overrides)
    return PipelineConfig(**kwargs)


class TestDegenerateInputs:
    def test_empty_input_flush(self):
        pipeline = QualityDrivenPipeline(_equi_config())
        assert pipeline.flush() == []
        assert pipeline.metrics.results_produced == 0

    def test_single_stream_only(self):
        # One stream never delivers: no results, no crash, flush clean.
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        ds = from_tuple_specs(
            [(0, ts, {"v": 1}) for ts in range(0, 3_000, 100)], num_streams=2
        )
        total = []
        for t in ds.arrivals():
            total.extend(pipeline.process(t))
        total.extend(pipeline.flush())
        assert total == []
        assert pipeline.metrics.adaptations >= 2

    def test_all_tuples_same_timestamp(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        ds = from_tuple_specs(
            [(i % 2, 500, {"v": 1}) for i in range(10)], num_streams=2
        )
        results = []
        for t in ds.arrivals():
            results.extend(pipeline.process(t))
        results.extend(pipeline.flush())
        # 5 x 5 equal-ts tuples: every pair joins exactly once.
        assert len(results) == 25

    def test_timestamp_zero_tuples(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        ds = from_tuple_specs(
            [(0, 0, {"v": 1}), (1, 0, {"v": 1})], num_streams=2
        )
        results = []
        for t in ds.arrivals():
            results.extend(pipeline.process(t))
        results.extend(pipeline.flush())
        assert len(results) == 1

    def test_extreme_delay_beyond_window(self):
        # A tuple older than everything: dropped by the join, no crash.
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        ds = from_tuple_specs(
            [
                (0, 50_000, {"v": 1}),
                (1, 50_100, {"v": 1}),
                (0, 10, {"v": 1}),  # delay of ~50 s, window is 1 s
            ],
            num_streams=2,
        )
        for t in ds.arrivals():
            pipeline.process(t)
        pipeline.flush()
        assert pipeline.join.stats.tuples_dropped == 1

    def test_monotone_burst_then_silence(self):
        # A burst of tuples then nothing: adaptation boundaries beyond the
        # last arrival simply never fire; flush drains cleanly.
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=ModelBasedPolicy(NonEqSel()))
        )
        ds = from_tuple_specs(
            [(i % 2, 100 + i, {"v": i % 3}) for i in range(50)], num_streams=2
        )
        for t in ds.arrivals():
            pipeline.process(t)
        pipeline.flush()
        assert pipeline.metrics.tuples_processed == 50


class TestOperatorRobustness:
    def test_kslack_interleaved_flush_and_process_rejected_gracefully(self):
        b = KSlackBuffer(100)
        b.process(StreamTuple(ts=10, stream=0, seq=0))
        b.flush()
        # Flush is terminal: the local clock and delay statistics stop at
        # their end-of-stream values, so further input would be annotated
        # against a dead clock — it is rejected instead.
        with pytest.raises(RuntimeError):
            b.process(StreamTuple(ts=500, stream=0, seq=1))

    def test_synchronizer_flush_then_more_input(self):
        sync = Synchronizer(2)
        sync.process(StreamTuple(ts=10, stream=0, seq=0))
        sync.flush()
        # After a flush the synchronizer keeps functioning; a tuple older
        # than T_sync is a straggler.
        out = sync.process(StreamTuple(ts=5, stream=1, seq=0))
        assert [t.ts for t in out] == [5]

    def test_join_tolerates_missing_attribute(self):
        op = MSWJOperator(
            [1_000, 1_000], JoinCondition([EquiPredicate(0, "v", 1, "v")])
        )
        op.process(StreamTuple(ts=10, values={}, stream=0, seq=0))  # no "v"
        results = op.process(StreamTuple(ts=20, values={"v": None}, stream=1, seq=0))
        # None == None: the missing attribute matches the explicit None.
        assert len(results) == 1

    def test_window_size_one_ms(self):
        op = MSWJOperator([1, 1], JoinCondition())
        op.process(StreamTuple(ts=10, stream=0, seq=0))
        assert len(op.process(StreamTuple(ts=11, stream=1, seq=0))) == 1
        assert op.process(StreamTuple(ts=13, stream=1, seq=1)) == []


class TestAdaptationRobustness:
    def test_adaptation_with_no_tuples_in_interval(self):
        # Stream jumps far ahead: several empty adaptation intervals fire
        # in a row without statistics; K must stay finite and valid.
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=ModelBasedPolicy(NonEqSel()))
        )
        ds = from_tuple_specs(
            [(0, 100, {"v": 1}), (1, 200, {"v": 1}), (0, 20_000, {"v": 1})],
            num_streams=2,
        )
        for t in ds.arrivals():
            pipeline.process(t)
        pipeline.flush()
        assert pipeline.metrics.adaptations >= 19
        assert pipeline.current_k_ms >= 0

    def test_gamma_one_requirement(self):
        # Γ = 1.0 is legal: the policy must chase full recall (K near the
        # max observed delay).  Streams alternate every 100 ms, so the
        # injected 700 ms timestamp set-back reads as a ~500 ms delay
        # against the stream's own local time.
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=ModelBasedPolicy(NonEqSel()), gamma=1.0)
        )
        specs = []
        for i, ts in enumerate(range(0, 10_000, 100)):
            effective = ts - 700 if i % 5 == 4 else ts
            specs.append((i % 2, max(0, effective), {"v": 1}))
        ds = from_tuple_specs(specs, num_streams=2)
        for t in ds.arrivals():
            pipeline.process(t)
        pipeline.flush()
        ks = [k for _, k in pipeline.metrics.k_history]
        assert max(ks) >= 450


class TestFlushProtocol:
    """The pipeline's end-of-input contract (used by the parallel shards)."""

    def test_flush_twice_is_idempotent(self):
        pipeline = QualityDrivenPipeline(_equi_config())
        ds = from_tuple_specs(
            [(i % 2, 100 * i, {"v": 1}) for i in range(20)], num_streams=2
        )
        total = []
        for t in ds.arrivals():
            total.extend(pipeline.process(t))
        total.extend(pipeline.flush())
        produced = pipeline.metrics.results_produced
        assert pipeline.flushed
        assert pipeline.flush() == []
        assert pipeline.metrics.results_produced == produced

    def test_flush_twice_count_mode(self):
        pipeline = QualityDrivenPipeline(_equi_config(collect_results=False))
        ds = from_tuple_specs(
            [(i % 2, 100 * i, {"v": 1}) for i in range(20)], num_streams=2
        )
        count = 0
        for t in ds.arrivals():
            count += pipeline.process(t)
        count += pipeline.flush()
        assert count > 0
        assert pipeline.flush() == 0

    def test_process_after_flush_raises(self):
        pipeline = QualityDrivenPipeline(_equi_config())
        assert not pipeline.flushed
        pipeline.flush()
        with pytest.raises(RuntimeError):
            pipeline.process(StreamTuple(ts=1, values={"v": 1}, stream=0))

    def test_close_stream_releases_tuples_gated_by_closed_empty_stream(self):
        # Stream 1 never delivers, so its emptiness gates the buffer;
        # closing it must release the waiting stream-0 tuples in ts order.
        sync = Synchronizer(2)
        held = []
        for ts in (30, 10, 20):
            held.extend(
                sync.process(StreamTuple(ts=ts, stream=0, seq=ts))
            )
        assert held == []
        assert sync.buffered == 3
        released = sync.close_stream(1)
        assert [t.ts for t in released] == [10, 20, 30]
        assert sync.buffered == 0
        assert sync.t_sync == 30
