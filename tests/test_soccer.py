"""Unit tests for the simulated soccer dataset (repro.streams.soccer)."""

import math
import random

from repro import SoccerConfig, make_soccer_dataset, player_distance, seconds
from repro.streams.soccer import PITCH_LENGTH_M, PITCH_WIDTH_M, _Player


def _small_config(**overrides):
    kwargs = dict(
        duration_ms=seconds(20),
        players_per_team=4,
        sample_period_ms=400,
        max_delay_ms=(4_000, 5_000),
        seed=13,
    )
    kwargs.update(overrides)
    return SoccerConfig(**kwargs)


class TestPlayerMovement:
    def test_positions_stay_on_pitch(self):
        player = _Player(1, random.Random(3))
        for _ in range(2_000):
            player.advance(0.2, (1.0, 7.0))
            assert 0.0 <= player.x <= PITCH_LENGTH_M
            assert 0.0 <= player.y <= PITCH_WIDTH_M

    def test_movement_is_bounded_by_speed(self):
        player = _Player(1, random.Random(4))
        for _ in range(500):
            x0, y0 = player.x, player.y
            player.advance(0.1, (1.0, 7.0))
            moved = math.hypot(player.x - x0, player.y - y0)
            assert moved <= 7.0 * 0.1 + 1e-6

    def test_player_actually_moves(self):
        player = _Player(1, random.Random(5))
        x0, y0 = player.x, player.y
        player.advance(5.0, (1.0, 7.0))
        assert (player.x, player.y) != (x0, y0)


class TestSoccerDataset:
    def test_two_streams(self):
        ds = make_soccer_dataset(_small_config())
        assert ds.num_streams == 2
        assert len(ds.stream_tuples(0)) > 0
        assert len(ds.stream_tuples(1)) > 0

    def test_schema(self):
        ds = make_soccer_dataset(_small_config())
        t = ds.stream_tuples(0)[0]
        assert set(t.values) == {"sID", "x", "y"}

    def test_player_ids_encode_team(self):
        ds = make_soccer_dataset(_small_config())
        assert all(t["sID"] < 100 for t in ds.stream_tuples(0))
        assert all(t["sID"] >= 100 for t in ds.stream_tuples(1))

    def test_positions_within_pitch(self):
        ds = make_soccer_dataset(_small_config())
        for t in ds:
            assert 0.0 <= t["x"] <= PITCH_LENGTH_M
            assert 0.0 <= t["y"] <= PITCH_WIDTH_M

    def test_delays_respect_per_team_caps(self):
        config = _small_config(duration_ms=seconds(60), burst_probability=0.2)
        ds = make_soccer_dataset(config)

        def worst_delay(stream):
            local = 0
            worst = 0
            for t in ds.stream_tuples(stream):
                local = max(local, t.ts)
                worst = max(worst, local - t.ts)
            return worst

        assert worst_delay(0) <= config.max_delay_ms[0]
        assert worst_delay(1) <= config.max_delay_ms[1]

    def test_deterministic_per_seed(self):
        a = make_soccer_dataset(_small_config())
        b = make_soccer_dataset(_small_config())
        assert [t.ts for t in a] == [t.ts for t in b]
        assert [(t["x"], t["y"]) for t in a] == [(t["x"], t["y"]) for t in b]

    def test_bursts_create_disorder(self):
        ds = make_soccer_dataset(
            _small_config(duration_ms=seconds(120), burst_probability=0.1)
        )
        assert ds.max_delay() > 0


class TestPlayerDistance:
    def test_euclidean(self):
        assert player_distance(0, 0, 3, 4) == 5.0

    def test_zero_for_same_point(self):
        assert player_distance(2.5, 7.0, 2.5, 7.0) == 0.0

    def test_symmetry(self):
        assert player_distance(1, 2, 5, 9) == player_distance(5, 9, 1, 2)
