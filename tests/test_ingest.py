"""Tests for pipelined asynchronous ingestion (ISSUE 9).

The load-bearing property is *feed transparency*: driving a
:class:`PartitionedPipeline` through a :class:`PipelinedIngest` feeder
thread produces the byte-identical canonical result sequence and summed
``JoinStatistics`` of the synchronous drive — for any chunking, any
executor, with credit windows armed, and across flush/close/migration
barriers landing mid-feed.  A hypothesis op-sequence layer drives
random submit/drain/flush interleavings against the synchronous
reference; a stub-pipeline layer pins the concurrency contract itself
(bounded-queue backpressure, error propagation, close-during-feed)
without multiprocessing in the loop.
"""

import random
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FixedKPolicy,
    PartitionedPipeline,
    PipelineConfig,
    PipelinedIngest,
    TRANSPORT_SHM,
    ZipfValueSampler,
    equi_join_chain,
    from_tuple_specs,
    run_partitioned,
    seconds,
)

# ---------------------------------------------------------------------------
# shared workload
# ---------------------------------------------------------------------------


def _dataset(num_tuples=900, z=1.1, domain=48, seed=11, max_delay=300):
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, domain + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay)
        events.append((i % 3, i * 9, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"ingest-{seed}")


def _lossless_config(dataset):
    k = dataset.max_delay()
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
    )


def _canonical(results):
    return sorted((r.ts, r.key()) for r in results)


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


@pytest.fixture(scope="module")
def reference(dataset):
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2, executor="serial",
        chunk_size=64,
    )
    return _canonical(outputs)


# ---------------------------------------------------------------------------
# feed transparency: pipelined == synchronous, all executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(executor="serial"),
        dict(executor="process"),
        dict(executor="process", transport=TRANSPORT_SHM),
        dict(executor="process", transport=TRANSPORT_SHM, credit_window=2),
    ],
    ids=["serial", "process-pipe", "process-shm", "process-shm-credit"],
)
def test_pipelined_matches_synchronous(dataset, reference, kwargs):
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2, chunk_size=64,
        pipelined=True, **kwargs,
    )
    assert _canonical(outputs) == reference


def test_pipelined_identity_at_shard_counts(dataset, reference):
    for shards in (1, 2, 4):
        outputs, _ = run_partitioned(
            dataset, _lossless_config(dataset), shards, chunk_size=64,
            pipelined=True, executor="process", transport=TRANSPORT_SHM,
            credit_window=2,
        )
        assert _canonical(outputs) == reference, f"shards={shards}"


def test_single_slot_queue_and_credit_starvation(dataset, reference):
    """The tightest bounds everywhere — one queue slot, one credit —
    still drain the full stream (backpressure, never deadlock/loss)."""
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2, chunk_size=64,
        pipelined=True, max_pending_batches=1,
        executor="process", transport=TRANSPORT_SHM, credit_window=1,
    )
    assert _canonical(outputs) == reference


def test_migration_barrier_during_feed(dataset, reference):
    """Rebalance barriers run on the feeder thread between batches —
    identity holds with migrations landing mid-feed."""
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 2, executor="process",
        transport=TRANSPORT_SHM, rebalance=True, rebalance_interval=256,
        slots_per_shard=4, rebalance_threshold=1.05,
    )
    chunk, outputs = [], []
    with pipeline:
        with PipelinedIngest(pipeline) as feeder:
            for t in dataset.arrivals():
                chunk.append(t)
                if len(chunk) >= 64:
                    feeder.submit(chunk)
                    chunk = []
            if chunk:
                feeder.submit(chunk)
            outputs = feeder.flush()
    assert pipeline.rebalances >= 1, "no migration happened; tune the test"
    assert _canonical(outputs) == reference


# ---------------------------------------------------------------------------
# hypothesis: random op sequences against the synchronous reference
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    chunking=st.lists(st.integers(min_value=1, max_value=97), min_size=1,
                      max_size=8),
    drains=st.sets(st.integers(min_value=0, max_value=7)),
    pending=st.integers(min_value=1, max_value=4),
)
def test_op_sequences_preserve_identity(chunking, drains, pending):
    """Any submit-size schedule with drains sprinkled between submits
    yields the synchronous outputs (serial executor: cheap, exact)."""
    dataset = _dataset(num_tuples=240, seed=13)
    config = _lossless_config(dataset)
    ref, _ = run_partitioned(dataset, config, 2, executor="serial")
    pipeline = PartitionedPipeline(_lossless_config(dataset), 2)
    tuples = list(dataset.arrivals())
    outputs = []
    with pipeline:
        with PipelinedIngest(pipeline, max_pending_batches=pending) as feeder:
            i = 0
            step = 0
            while i < len(tuples):
                size = chunking[step % len(chunking)]
                feeder.submit(tuples[i : i + size])
                i += size
                if step in drains:
                    feeder.drain()
                step += 1
            outputs = feeder.flush()
    assert _canonical(outputs) == _canonical(ref)


# ---------------------------------------------------------------------------
# concurrency contract, pinned on a stub pipeline (no multiprocessing)
# ---------------------------------------------------------------------------


class _StubConfig:
    collect_results = True


class _StubPipeline:
    """Just enough PartitionedPipeline surface for PipelinedIngest,
    with hooks to block or fail the feed deterministically."""

    def __init__(self, block_event=None, fail_on=None):
        self.config = _StubConfig()
        self.batches = []
        self.flushed = False
        self.closed = False
        self._block_event = block_event
        self._fail_on = fail_on

    def process_batch(self, batch):
        if self._block_event is not None:
            assert self._block_event.wait(timeout=10.0)
        if self._fail_on is not None and len(self.batches) + 1 == self._fail_on:
            raise ValueError("poisoned batch")
        self.batches.append(list(batch))
        return []

    def flush(self):
        self.flushed = True
        return []

    def close(self):
        self.closed = True


def test_submit_blocks_when_queue_is_full():
    gate = threading.Event()
    stub = _StubPipeline(block_event=gate)
    feeder = PipelinedIngest(stub, max_pending_batches=1)
    try:
        feeder.submit([1])  # consumed immediately, blocks in the stub
        feeder.submit([2])  # fills the single queue slot
        blocked_at = []

        def producer():
            feeder.submit([3])  # must block until the gate opens
            blocked_at.append(time.perf_counter())

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "submit returned despite a full queue"
        opened_at = time.perf_counter()
        gate.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert blocked_at[0] >= opened_at
        feeder.drain()
        assert stub.batches == [[1], [2], [3]]
    finally:
        gate.set()
        feeder.close()
    assert stub.closed


def test_feeder_error_propagates_and_keeps_draining():
    stub = _StubPipeline(fail_on=2)
    feeder = PipelinedIngest(stub, max_pending_batches=1)
    feeder.submit([1])
    feeder.submit([2])  # poisoned inside the feeder
    # The queue keeps draining after the failure, so these cannot
    # deadlock; one of them (or drain) surfaces the stored error.
    with pytest.raises(RuntimeError, match="feeder thread") as excinfo:
        for i in range(3, 20):
            feeder.submit([i])
        feeder.drain()
    assert isinstance(excinfo.value.__cause__, ValueError)
    with pytest.raises(RuntimeError, match="feeder thread"):
        feeder.flush()
    feeder.close()
    assert stub.batches == [[1]]  # nothing past the poison was fed


def test_close_during_feed_stops_cleanly():
    stub = _StubPipeline()
    feeder = PipelinedIngest(stub, max_pending_batches=2)
    feeder.submit([1])
    feeder.submit([2])
    feeder.close()
    assert stub.closed
    assert not stub.flushed
    with pytest.raises(RuntimeError, match="flushed/closed"):
        feeder.submit([3])
    feeder.close()  # idempotent


def test_flush_then_submit_raises_and_flush_reports_feed_order():
    stub = _StubPipeline()
    feeder = PipelinedIngest(stub)
    for i in range(5):
        feeder.submit([i])
    feeder.flush()
    assert stub.flushed
    assert stub.batches == [[0], [1], [2], [3], [4]]
    with pytest.raises(RuntimeError, match="flushed/closed"):
        feeder.submit([5])
    feeder.close()


def test_rejects_nonpositive_queue_bound():
    with pytest.raises(ValueError, match="max_pending_batches"):
        PipelinedIngest(_StubPipeline(), max_pending_batches=0)
