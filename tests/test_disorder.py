"""Unit tests for delay models (repro.streams.disorder)."""

import random

import pytest

from repro import (
    BurstyDelayModel,
    ConstantDelayModel,
    NoDelayModel,
    PhasedDelayModel,
    ZipfDelayModel,
)


class TestNoDelayModel:
    def test_always_zero(self):
        model = NoDelayModel()
        assert all(model.sample(t) == 0 for t in range(0, 10_000, 97))

    def test_max_delay_zero(self):
        assert NoDelayModel().max_delay == 0


class TestConstantDelayModel:
    def test_constant_value(self):
        model = ConstantDelayModel(250)
        assert model.sample(0) == 250
        assert model.sample(99_999) == 250
        assert model.max_delay == 250

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelayModel(-1)


class TestZipfDelayModel:
    def test_delays_within_bounds(self):
        model = ZipfDelayModel(2_000, skew=2.0, rng=random.Random(1))
        draws = [model.sample(0) for _ in range(2_000)]
        assert all(0 <= d <= 2_000 for d in draws)

    def test_delays_are_multiples_of_step(self):
        model = ZipfDelayModel(500, skew=1.0, step=10, rng=random.Random(2))
        assert all(model.sample(0) % 10 == 0 for _ in range(500))

    def test_higher_skew_gives_more_zero_delays(self):
        low = ZipfDelayModel(5_000, skew=1.0, rng=random.Random(3))
        high = ZipfDelayModel(5_000, skew=3.0, rng=random.Random(3))
        low_zero = sum(1 for _ in range(3_000) if low.sample(0) == 0)
        high_zero = sum(1 for _ in range(3_000) if high.sample(0) == 0)
        assert high_zero > low_zero

    def test_max_delay_reported(self):
        assert ZipfDelayModel(12_345, skew=2.0).max_delay == 12_345

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ZipfDelayModel(-5, skew=1.0)
        with pytest.raises(ValueError):
            ZipfDelayModel(100, skew=1.0, step=0)


class TestBurstyDelayModel:
    def test_delays_bounded(self):
        model = BurstyDelayModel(
            max_delay=10_000, burst_probability=0.5, rng=random.Random(4)
        )
        assert all(0 <= model.sample(0) <= 10_000 for _ in range(2_000))

    def test_bursts_exceed_jitter(self):
        model = BurstyDelayModel(
            max_delay=20_000,
            jitter_mean=50.0,
            burst_probability=1.0,
            burst_min=5_000,
            rng=random.Random(5),
        )
        assert all(model.sample(0) >= 5_000 for _ in range(200))

    def test_no_bursts_means_small_jitter(self):
        model = BurstyDelayModel(
            max_delay=20_000,
            jitter_mean=50.0,
            burst_probability=0.0,
            burst_min=5_000,
            rng=random.Random(6),
        )
        assert all(model.sample(0) <= 5_000 for _ in range(500))

    def test_max_below_burst_min_rejected(self):
        with pytest.raises(ValueError):
            BurstyDelayModel(max_delay=1_000, burst_min=2_000)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            BurstyDelayModel(max_delay=10_000, burst_probability=1.5)


class TestPhasedDelayModel:
    def test_switches_models_at_boundaries(self):
        model = PhasedDelayModel(
            [(0, ConstantDelayModel(10)), (1_000, ConstantDelayModel(500))]
        )
        assert model.sample(500) == 10
        assert model.sample(1_000) == 500
        assert model.sample(5_000) == 500

    def test_max_delay_is_max_over_phases(self):
        model = PhasedDelayModel(
            [(0, ConstantDelayModel(10)), (1_000, ConstantDelayModel(500))]
        )
        assert model.max_delay == 500

    def test_first_phase_must_start_at_zero(self):
        with pytest.raises(ValueError):
            PhasedDelayModel([(5, NoDelayModel())])

    def test_unsorted_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedDelayModel(
                [(0, NoDelayModel()), (100, NoDelayModel()), (50, NoDelayModel())]
            )

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            PhasedDelayModel([])
