"""Tests for the deterministic soak & differential-oracle harness.

Two halves:

* the harness *passes* on a healthy engine (all six checks hold, the
  per-phase accounting is conserved, fingerprints agree, both executor
  banks work — including the chaos bank's supervised twin); and
* **failure injection** — a deliberately broken pipeline stub must trip
  each of the six checks individually, proving none of them is
  vacuous.  Each stub wraps the real driver and tampers with exactly
  one contract; tampering uniformly across variants isolates the
  targeted check (e.g. dropping the same results everywhere breaks
  recall but keeps byte-identity intact).
"""

from repro import JoinResult, StreamTuple
from repro import TieredStoreConfig
from repro.workloads.soak import (
    ALL_CHECKS,
    CHECK_HOT_TIER,
    CHECK_IDENTITY,
    CHECK_MEMORY,
    CHECK_RECALL,
    CHECK_RECOVERY,
    CHECK_SUBSET,
    PipelineDriver,
    SoakConfig,
    SoakHarness,
    SoakViolation,
    canonical_bytes,
    run_soak,
)


def small_soak(**overrides):
    defaults = dict(
        phases=3,
        seed=11,
        phase_duration_ms=2_000,
        window_s=0.5,
        shard_counts=(1, 2, 4),
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


# ----------------------------------------------------------------------
# the healthy engine passes
# ----------------------------------------------------------------------


class TestHealthySoak:
    def test_serial_bank_passes_all_checks(self):
        report = run_soak(small_soak())
        assert report.passed, [str(v) for v in report.violations]
        # No tiered variant in the default bank, so the hot-tier
        # residency check has nothing to probe and reports as not run;
        # likewise recovery without a chaos variant.
        assert set(report.checks_run) == (
            set(ALL_CHECKS) - {CHECK_HOT_TIER, CHECK_RECOVERY}
        )
        assert report.variants == [
            "serial-1", "serial-2", "serial-4", "serial-4-rebalanced"
        ]
        assert len(report.phases) == 3
        # Byte-identity oracle: one fingerprint for the whole bank.
        assert len(set(report.fingerprints.values())) == 1

    def test_phase_boundary_recall_accounting_is_conserved(self):
        # The per-phase ranges partition the timestamp axis, so the
        # per-phase true counts must sum to the truth total, and every
        # variant's per-phase produced counts must sum to the full
        # (lossless == complete) result count.
        report = run_soak(small_soak())
        assert sum(p.true_count for p in report.phases) == report.truth_total
        for variant in report.variants:
            produced = sum(p.produced[variant] for p in report.phases)
            assert produced == report.truth_total
        for phase in report.phases:
            for variant in report.variants:
                assert phase.recall[variant] == 1.0

    def test_memory_probed_on_serial_variants_each_phase(self):
        report = run_soak(small_soak())
        for phase in report.phases:
            assert set(phase.state) == set(report.variants)  # all serial
            for windows, pending in phase.state.values():
                assert windows <= report.caps.window_cap
                assert pending <= report.caps.pending_cap

    def test_process_bank_passes_and_skips_worker_memory_probe(self):
        report = run_soak(
            small_soak(phases=2, shard_counts=(1, 2), executor="process")
        )
        assert report.passed, [str(v) for v in report.violations]
        assert report.variants == [
            "serial-1", "process-2", "process-2-rebalanced"
        ]
        # Worker state is not introspectable; the serial reference is.
        for phase in report.phases:
            assert set(phase.state) == {"serial-1"}

    def test_render_mentions_verdict_and_fingerprints(self):
        report = run_soak(small_soak(phases=2))
        text = report.render()
        assert "PASS" in text and "fingerprints" in text

    def test_tiered_bank_passes_all_five_checks(self):
        report = run_soak(small_soak(
            phases=2,
            shard_counts=(1, 2),
            store=TieredStoreConfig(hot_budget=64, bucket_span_ms=100),
        ))
        assert report.passed, [str(v) for v in report.violations]
        assert set(report.checks_run) == set(ALL_CHECKS) - {CHECK_RECOVERY}
        assert "serial-1-tiered" in report.variants
        # The tiered twins joined the byte-identity oracle: one
        # fingerprint across memory and tiered variants alike.
        assert len(set(report.fingerprints.values())) == 1
        # The hot-tier probe actually sampled the tiered variants.
        assert any(
            name.endswith("-tiered") and phase.hot.get(name)
            for phase in report.phases
            for name in report.variants
        )

    def test_deterministic_across_runs(self):
        first = run_soak(small_soak())
        second = run_soak(small_soak())
        assert first.fingerprints == second.fingerprints
        assert first.truth_total == second.truth_total

    def test_chaos_bank_passes_with_recovery_check(self):
        report = run_soak(small_soak(
            phases=2, shard_counts=(1, 2), executor="process", chaos=True,
        ))
        assert report.passed, [str(v) for v in report.violations]
        # Chaos arms the recovery check (only hot-tier stays dormant).
        assert set(report.checks_run) == set(ALL_CHECKS) - {CHECK_HOT_TIER}
        assert "supervised-2-chaos" in report.variants
        # The identity oracle cannot tell the crashed-and-recovered
        # variant's output from the clean runs.
        assert len(set(report.fingerprints.values())) == 1
        stats = report.recovery["supervised-2-chaos"]
        assert stats["respawns"] >= 1
        assert stats["checkpoints_taken"] >= 1
        text = report.render()
        assert "recovery counters" in text and "respawns=" in text


# ----------------------------------------------------------------------
# failure injection: each check must be able to fail
# ----------------------------------------------------------------------


def run_with_driver(driver_factory, **overrides):
    config = small_soak(**overrides)
    harness = SoakHarness(config, driver_factory=driver_factory)
    return harness.run(), harness.workload


def bogus_result(ts=100):
    # seq far outside anything the generator emits: its key cannot be in
    # the true result set.
    components = tuple(
        StreamTuple(ts=ts, values={"auction": -1}, stream=s, seq=10 ** 6)
        for s in range(3)
    )
    return JoinResult(ts, components)


class TestFailureInjection:
    def test_subset_check_trips_on_fabricated_result(self):
        class Fabricating(PipelineDriver):
            def flush(self):
                # The same fabricated result in every variant: identity
                # holds, recall caps at 1.0 — only subset can trip.
                return super().flush() + [bogus_result()]

        report, _ = run_with_driver(Fabricating)
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_SUBSET}

    def test_recall_check_trips_on_dropped_results(self):
        class Dropping(PipelineDriver):
            """Drops every result of phase 1 (uniformly across variants)."""

            def __init__(self, spec, config, soak):
                super().__init__(spec, config, soak)
                self._lo, self._hi = None, None

            def _filter(self, results):
                return [
                    r for r in results
                    if not (self._lo < r.ts <= self._hi)
                ]

            def feed(self, batch):
                return self._filter(super().feed(batch))

            def flush(self):
                return self._filter(super().flush())

        def factory(spec, config, soak):
            driver = Dropping(spec, config, soak)
            lo = soak.phase_duration_ms
            driver._lo, driver._hi = lo, lo + soak.phase_duration_ms
            return driver

        report, _ = run_with_driver(factory)
        assert not report.passed
        checks = {v.check for v in report.violations}
        assert checks == {CHECK_RECALL}
        assert all(v.phase == 1 for v in report.violations)

    def test_subset_check_trips_on_duplicate_result(self):
        class Duplicating(PipelineDriver):
            """Every variant re-emits its canonically-first result: the
            true result set is distinct, so the (multiset) subset check
            must trip — and because every variant duplicates the *same*
            result (which shard buffered it until flush varies, so it
            must be picked canonically, not positionally), identity
            holds and the deduplicated recall stays 1.0."""

            def __init__(self, spec, config, soak):
                super().__init__(spec, config, soak)
                self._returned = []

            def feed(self, batch):
                results = super().feed(batch)
                self._returned.extend(results)
                return results

            def flush(self):
                results = super().flush()
                self._returned.extend(results)
                if self._returned:
                    first = min(
                        self._returned, key=lambda r: (r.ts, r.key())
                    )
                    results = results + [first]
                return results

        report, _ = run_with_driver(Duplicating)
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_SUBSET}
        assert all("duplicate" in v.detail for v in report.violations)

    def test_identity_check_trips_on_single_variant_divergence(self):
        class DroppingOne(PipelineDriver):
            """One non-reference variant loses a single result.

            One result out of thousands keeps that variant's phase
            recall above the 0.95 requirement, so only the byte-identity
            oracle can see the divergence.
            """

            def flush(self):
                results = super().flush()
                if self.spec.name == "serial-2" and results:
                    results = results[:-1]
                return results

        report, _ = run_with_driver(DroppingOne)
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_IDENTITY}
        assert all(v.variant == "serial-2" for v in report.violations)

    def test_memory_check_trips_on_unbounded_state(self):
        class Ballooning(PipelineDriver):
            def state_sizes(self):
                return (10 ** 9, 10 ** 9)

        report, _ = run_with_driver(Ballooning)
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_MEMORY}

    def test_hot_tier_check_trips_on_bloated_hot_tier(self):
        class HotBloat(PipelineDriver):
            """Reports an unbounded hot tier; the join itself is intact,
            so subset/recall/identity hold and the analytic *memory*
            caps (total window occupancy) are respected — only the
            hot-tier residency check can trip."""

            def hot_sizes(self):
                sizes = super().hot_sizes()
                if sizes is None:
                    return None
                return [10 ** 9 for _ in sizes]

        report, _ = run_with_driver(
            HotBloat,
            phases=2,
            shard_counts=(1, 2),
            store=TieredStoreConfig(hot_budget=64, bucket_span_ms=100),
        )
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_HOT_TIER}
        assert all(v.variant.endswith("-tiered") for v in report.violations)

    def test_recovery_check_trips_on_vacuous_chaos_run(self):
        class Undisturbed(PipelineDriver):
            """Reports zeroed supervision counters: the join output is
            intact (subset/recall/identity all hold), so only the
            recovery check's vacuousness guards can trip — proving a
            chaos run whose faults never fire does not pass silently."""

            def recovery_stats(self):
                stats = super().recovery_stats()
                if stats is None:
                    return None
                return {name: 0 for name in stats}

        report, _ = run_with_driver(
            Undisturbed,
            phases=2,
            shard_counts=(1, 2),
            executor="process",
            chaos=True,
        )
        assert not report.passed
        assert {v.check for v in report.violations} == {CHECK_RECOVERY}
        details = " ".join(v.detail for v in report.violations)
        assert "vacuous" in details

    def test_failing_report_renders_violations(self):
        class Ballooning(PipelineDriver):
            def state_sizes(self):
                return (10 ** 9, 10 ** 9)

        report, _ = run_with_driver(Ballooning, phases=2)
        text = report.render()
        assert "FAIL" in text and "memory" in text


# ----------------------------------------------------------------------
# plumbing details
# ----------------------------------------------------------------------


class TestSoakPlumbing:
    def test_variant_bank_always_includes_serial_reference(self):
        config = small_soak(executor="process", shard_counts=(2, 4))
        names = [spec.name for spec in config.variants()]
        assert names[0] == "serial-1"
        assert names == [
            "serial-1", "process-2", "process-4", "process-4-rebalanced"
        ]

    def test_single_variant_bank_reports_identity_as_not_run(self):
        # With no shard count > 1 there is nothing to differentially
        # compare; the report must not claim the identity oracle held.
        report = run_soak(small_soak(phases=2, shard_counts=(1,)))
        assert report.passed
        assert report.variants == ["serial-1"]
        assert CHECK_IDENTITY not in report.checks_run
        assert set(report.checks_run) == (
            set(ALL_CHECKS) - {CHECK_IDENTITY, CHECK_HOT_TIER, CHECK_RECOVERY}
        )
        assert "identity" not in report.render().split("all checks held:")[-1]

    def test_chaos_bank_appends_supervised_twin_of_top_shard_count(self):
        config = small_soak(executor="process", shard_counts=(2, 4), chaos=True)
        specs = config.variants()
        assert [s.name for s in specs] == [
            "serial-1", "process-2", "process-4", "process-4-rebalanced",
            "supervised-4-chaos",
        ]
        twin = specs[-1]
        assert twin.executor == "supervised"
        assert twin.chaos and twin.rebalance and twin.shards == 4

    def test_canonical_bytes_is_order_independent(self):
        a = bogus_result(ts=10)
        b = bogus_result(ts=20)
        assert canonical_bytes([a, b]) == canonical_bytes([b, a])

    def test_violation_renders_phase_and_variant(self):
        v = SoakViolation(CHECK_RECALL, 2, "serial-4", "too low")
        assert "phase 2" in str(v) and "serial-4" in str(v)
        assert "run" in str(SoakViolation(CHECK_IDENTITY, -1, "x", "d"))
