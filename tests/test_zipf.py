"""Unit tests for the bounded Zipf sampler (repro.streams.zipf)."""

import random

import pytest

from repro import BoundedZipf, ZipfValueSampler


class TestBoundedZipf:
    def test_pmf_sums_to_one(self):
        z = BoundedZipf(100, 1.5)
        assert sum(z.pmf(r) for r in range(1, 101)) == pytest.approx(1.0)

    def test_zero_skew_is_uniform(self):
        z = BoundedZipf(10, 0.0)
        for rank in range(1, 11):
            assert z.pmf(rank) == pytest.approx(0.1)

    def test_pmf_monotonically_decreasing_for_positive_skew(self):
        z = BoundedZipf(50, 2.0)
        probabilities = [z.pmf(r) for r in range(1, 51)]
        assert all(a >= b for a, b in zip(probabilities, probabilities[1:]))

    def test_higher_skew_concentrates_on_rank_one(self):
        low = BoundedZipf(100, 1.0)
        high = BoundedZipf(100, 3.0)
        assert high.pmf(1) > low.pmf(1)

    def test_sample_rank_within_support(self):
        z = BoundedZipf(7, 1.0, rng=random.Random(3))
        assert all(1 <= z.sample_rank() <= 7 for _ in range(500))

    def test_sample_matches_pmf_roughly(self):
        z = BoundedZipf(5, 2.0, rng=random.Random(11))
        draws = [z.sample_rank() for _ in range(20_000)]
        frequency = draws.count(1) / len(draws)
        assert frequency == pytest.approx(z.pmf(1), abs=0.02)

    def test_mean_rank_decreases_with_skew(self):
        means = [BoundedZipf(100, skew).mean_rank() for skew in (0.0, 1.0, 2.0, 3.0)]
        assert all(a > b for a, b in zip(means, means[1:]))

    def test_single_rank_support(self):
        z = BoundedZipf(1, 2.0)
        assert z.pmf(1) == pytest.approx(1.0)
        assert z.sample_rank() == 1

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(0, 1.0)

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            BoundedZipf(10, -0.5)

    def test_pmf_out_of_range_rejected(self):
        z = BoundedZipf(4, 1.0)
        with pytest.raises(ValueError):
            z.pmf(5)

    def test_deterministic_with_seeded_rng(self):
        a = BoundedZipf(20, 1.5, rng=random.Random(42))
        b = BoundedZipf(20, 1.5, rng=random.Random(42))
        assert [a.sample_rank() for _ in range(50)] == [
            b.sample_rank() for _ in range(50)
        ]


class TestZipfValueSampler:
    def test_samples_from_support(self):
        sampler = ZipfValueSampler([10, 20, 30], 1.0, rng=random.Random(1))
        assert all(sampler.sample() in (10, 20, 30) for _ in range(200))

    def test_first_support_value_most_likely(self):
        sampler = ZipfValueSampler(list(range(0, 100)), 2.5, rng=random.Random(5))
        draws = [sampler.sample() for _ in range(5_000)]
        assert draws.count(0) > draws.count(1) > 0

    def test_set_skew_changes_distribution(self):
        sampler = ZipfValueSampler(list(range(50)), 0.0, rng=random.Random(9))
        sampler.set_skew(4.0)
        draws = [sampler.sample() for _ in range(2_000)]
        assert draws.count(0) / len(draws) > 0.5

    def test_pmf_of_value(self):
        sampler = ZipfValueSampler([5, 6], 0.0)
        assert sampler.pmf_of_value(5) == pytest.approx(0.5)
        assert sampler.pmf_of_value(99) == 0.0

    def test_empty_support_rejected(self):
        with pytest.raises(ValueError):
            ZipfValueSampler([], 1.0)
