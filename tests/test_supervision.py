"""Tests for fault-tolerant shard execution (ISSUE 8).

The load-bearing property is *recovery transparency*: under lossless
disorder handling, a supervised run disturbed by worker crashes,
SIGKILLs, hangs, corrupted checkpoints or migration-barrier crashes
recovers to the byte-identical canonical result sequence and summed
``JoinStatistics`` of an undisturbed run — proven at shards 1/2/4, on
both transports, over both window stores.  Around it: hang *detection*
(typed :class:`ShardFailure` within the heartbeat timeout instead of a
deadlock), respawn-budget exhaustion failing the dead shard's slots
over to survivors, and the base process executor surfacing dead
workers as typed errors in ``submit``/``finish``/``close``.
"""

import random
import time

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    FixedKPolicy,
    PartitionedPipeline,
    PipelineConfig,
    ShardFailure,
    SupervisedExecutor,
    SupervisionConfig,
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    TRANSPORT_SHM,
    TieredStoreConfig,
    ZipfValueSampler,
    chaos_plan,
    equi_join_chain,
    from_tuple_specs,
    seconds,
)
from repro.faults import (
    FAULT_KINDS,
    KIND_CORRUPT_CHECKPOINT,
    KIND_CRASH_AFTER_BATCH,
    KIND_CRASH_BEFORE_BATCH,
    KIND_CRASH_MID_RING_WRITE,
    KIND_CRASH_ON_MIGRATE,
    KIND_HANG_BEFORE_BATCH,
    KIND_SIGKILL_BEFORE_BATCH,
    KIND_SLOW_RECV,
    KIND_STALL_RECV,
)

# ---------------------------------------------------------------------------
# shared workload: small, skewed, disordered, lossless-recoverable
# ---------------------------------------------------------------------------


def _dataset(num_tuples=1_200, z=1.1, domain=48, seed=5, max_delay=300):
    """Three interleaved streams with a Zipf join key and bounded delays."""
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, domain + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay)
        events.append((i % 3, i * 9, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"sup-{seed}")


def _lossless_config(dataset, store=None):
    k = dataset.max_delay()
    kwargs = {} if store is None else {"store": store}
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
        **kwargs,
    )


def _canonical(results):
    return sorted((r.ts, r.key()) for r in results)


def _drive(dataset, config, shards, **kwargs):
    """Feed per-tuple, flush; return (canonical seq, stats, pipeline)."""
    pipeline = PartitionedPipeline(config, shards, **kwargs)
    outputs = []
    with pipeline:
        for t in dataset.arrivals():
            outputs.extend(pipeline.process(t))
        outputs.extend(pipeline.flush())
        stats = pipeline.join_statistics()
    return _canonical(outputs), stats, pipeline


SUP = SupervisionConfig(
    heartbeat_interval=4,
    heartbeat_timeout_s=5.0,
    checkpoint_interval=8,
    max_respawns=4,
    backoff_base_s=0.01,
)


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


@pytest.fixture(scope="module")
def reference(dataset):
    """Serial single-shard canonical sequence + stats, per store."""
    cache = {}

    def _get(store=None):
        key = "tiered" if store is not None else "memory"
        if key not in cache:
            cache[key] = _drive(
                dataset, _lossless_config(dataset, store), 1
            )[:2]
        return cache[key]

    return _get


# ---------------------------------------------------------------------------
# recovery identity matrix: shards x transport x store
# ---------------------------------------------------------------------------


def _crash_plan(shards):
    """One crash and one SIGKILL, on distinct shards when possible."""
    return FaultPlan((
        FaultSpec(0, KIND_CRASH_AFTER_BATCH, at=3),
        FaultSpec(1 % shards, KIND_SIGKILL_BEFORE_BATCH, at=6),
    ))


@pytest.mark.parametrize(
    "transport", [TRANSPORT_BLOCKS, TRANSPORT_OBJECTS, TRANSPORT_SHM]
)
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_crash_recovery_is_byte_identical(dataset, reference, shards,
                                          transport):
    ref_seq, ref_stats = reference()
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), shards,
        executor="supervised", batch_size=16, transport=transport,
        supervision=SUP, fault_plan=_crash_plan(shards),
    )
    assert pipeline.executor.respawns >= 1, "fault plan never fired"
    assert seq == ref_seq
    assert stats == ref_stats


@pytest.mark.parametrize("shards", [2, 4])
def test_crash_recovery_identical_on_tiered_store(dataset, reference, shards):
    store = TieredStoreConfig(hot_budget=64)
    ref_seq, ref_stats = reference(store)
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset, store), shards,
        executor="supervised", batch_size=16,
        supervision=SUP, fault_plan=_crash_plan(shards),
    )
    assert pipeline.executor.respawns >= 1
    assert seq == ref_seq
    assert stats == ref_stats


def test_clean_supervised_run_checkpoints_and_matches(dataset, reference):
    ref_seq, ref_stats = reference()
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16, supervision=SUP,
    )
    executor = pipeline.executor
    assert executor.respawns == 0
    assert executor.checkpoints_taken >= 1
    assert seq == ref_seq
    assert stats == ref_stats


# ---------------------------------------------------------------------------
# hang detection
# ---------------------------------------------------------------------------


def test_hang_is_detected_and_recovered(dataset, reference):
    ref_seq, ref_stats = reference()
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=1.0,
        checkpoint_interval=8, max_respawns=4, backoff_base_s=0.01,
    )
    plan = FaultPlan(
        (FaultSpec(0, KIND_HANG_BEFORE_BATCH, at=4, param=60.0),)
    )
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    assert pipeline.executor.respawns >= 1
    assert seq == ref_seq
    assert stats == ref_stats


def test_hang_without_recovery_raises_within_timeout(dataset):
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=1.0,
        checkpoint_interval=8, recover=False,
    )
    plan = FaultPlan(
        (FaultSpec(0, KIND_HANG_BEFORE_BATCH, at=3, param=60.0),)
    )
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    started = time.perf_counter()
    with pipeline:
        with pytest.raises(ShardFailure, match="shard 0") as excinfo:
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()
    elapsed = time.perf_counter() - started
    assert excinfo.value.shard == 0
    assert "unresponsive" in str(excinfo.value)
    # Detection is bounded by the heartbeat timeout, not the hang: the
    # worker sleeps 60s, the parent gives up after ~1s of silence.
    assert elapsed < 30.0


def test_crash_without_recovery_raises_typed_failure(dataset):
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=2.0,
        checkpoint_interval=8, recover=False,
    )
    plan = FaultPlan((FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=3),))
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    with pipeline:
        with pytest.raises(ShardFailure, match="shard 0"):
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()


# ---------------------------------------------------------------------------
# corrupted checkpoints
# ---------------------------------------------------------------------------


def test_corrupt_checkpoint_rejected_then_recovered(dataset, reference):
    ref_seq, ref_stats = reference()
    plan = FaultPlan((FaultSpec(0, KIND_CORRUPT_CHECKPOINT, at=1),))
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=SUP, fault_plan=plan,
    )
    executor = pipeline.executor
    assert executor.checkpoints_rejected >= 1
    assert executor.respawns >= 1
    assert seq == ref_seq
    assert stats == ref_stats


# ---------------------------------------------------------------------------
# shared-memory transport faults (ISSUE 9)
# ---------------------------------------------------------------------------


def test_crash_mid_ring_write_replays_byte_identical(dataset, reference):
    """A worker dying *inside* a reply-ring write leaves a torn frame
    with an unpublished cursor: the parent must observe only a dead
    worker — never the torn bytes — and recovery must stay exact."""
    ref_seq, ref_stats = reference()
    plan = FaultPlan((FaultSpec(0, KIND_CRASH_MID_RING_WRITE, at=2),))
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16, transport=TRANSPORT_SHM,
        supervision=SUP, fault_plan=plan,
    )
    assert pipeline.executor.respawns >= 1, "fault plan never fired"
    assert seq == ref_seq
    assert stats == ref_stats


def test_stall_recv_is_backpressure_not_a_failure(dataset, reference):
    """A worker freezing ring consumption long enough to exhaust a
    one-batch credit window must stall the feed — bounded, observable
    as elapsed time — and resume with byte-identical output and zero
    respawns; supervision must not mistake slowness for death."""
    ref_seq, ref_stats = reference()
    stall_s = 0.8
    plan = FaultPlan((FaultSpec(0, KIND_STALL_RECV, at=4, param=stall_s),))
    started = time.perf_counter()
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16, transport=TRANSPORT_SHM,
        credit_window=1, supervision=SUP, fault_plan=plan,
    )
    elapsed = time.perf_counter() - started
    # The stalled shard stops granting credit, so the parent provably
    # waited out the stall (lower bound) without tripping supervision
    # or deadlocking (the run finished, upper bound enforced by the
    # suite completing at all).
    assert elapsed >= stall_s
    assert pipeline.executor.respawns == 0
    assert seq == ref_seq
    assert stats == ref_stats


# ---------------------------------------------------------------------------
# crash inside the migration barrier
# ---------------------------------------------------------------------------


def test_migration_crash_recovers_and_rebalances(dataset, reference):
    ref_seq, ref_stats = reference()
    rebalance_kwargs = dict(
        rebalance=True, rebalance_interval=256, slots_per_shard=4,
        rebalance_threshold=1.05,
    )
    plan = FaultPlan((
        FaultSpec(0, KIND_CRASH_ON_MIGRATE, at=1),
        FaultSpec(1, KIND_CRASH_ON_MIGRATE, at=1),
    ))
    seq, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=SUP, fault_plan=plan, **rebalance_kwargs,
    )
    assert pipeline.rebalances >= 1, "no migration happened; tune the test"
    assert pipeline.executor.respawns >= 1
    assert seq == ref_seq
    assert stats == ref_stats


# ---------------------------------------------------------------------------
# respawn-budget exhaustion -> failover to survivors
# ---------------------------------------------------------------------------


def _wide_k_config(dataset):
    """Lossless config whose K covers the whole run's event span.

    Failover refeeds the dead shard's replay log to survivors whose
    event-time clocks have advanced past it; the refed tuples are only
    *not* stragglers when the disorder bound K absorbs the failover lag.
    A K spanning the run makes failover output-identical regardless of
    when the budget exhausts (the bounded-K degraded case is covered by
    ``test_budget_exhaustion_failover_degrades_gracefully``).
    """
    k = 20_000
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
    )


def test_budget_exhaustion_fails_over_to_survivor(dataset):
    ref_seq, ref_stats = _drive(dataset, _wide_k_config(dataset), 1)[:2]
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=5.0,
        checkpoint_interval=8, max_respawns=2, backoff_base_s=0.01,
    )
    plan = FaultPlan(
        (FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=4, persistent=True),)
    )
    seq, stats, pipeline = _drive(
        dataset, _wide_k_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    assert pipeline.executor.respawns == 2  # the full budget was spent
    assert pipeline.failovers == 1
    assert seq == ref_seq
    assert stats == ref_stats


def test_budget_exhaustion_failover_degrades_gracefully(dataset, reference):
    """Bounded K: failover keeps running and produces no bogus results.

    When the failover lag exceeds K, refed tuples are stragglers by the
    paper's own disorder semantics — results may be *lost*, never
    fabricated or duplicated, and the run completes instead of raising.
    """
    ref_seq, _ = reference()
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=5.0,
        checkpoint_interval=8, max_respawns=2, backoff_base_s=0.01,
    )
    plan = FaultPlan(
        (FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=4, persistent=True),)
    )
    seq, _, pipeline = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    assert pipeline.failovers == 1
    reference_set = set(ref_seq)
    assert set(seq) <= reference_set  # subset: nothing fabricated
    assert len(seq) == len(set(seq))  # no duplicates either


def test_budget_exhaustion_single_shard_is_terminal(dataset):
    sup = SupervisionConfig(
        heartbeat_interval=4, heartbeat_timeout_s=5.0,
        checkpoint_interval=8, max_respawns=1, backoff_base_s=0.01,
    )
    plan = FaultPlan(
        (FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=3, persistent=True),)
    )
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 1,
        executor="supervised", batch_size=16,
        supervision=sup, fault_plan=plan,
    )
    with pipeline:
        with pytest.raises(ShardFailure, match="respawn budget exhausted"):
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()


# ---------------------------------------------------------------------------
# base process executor: dead workers surface as typed errors (no deadlock)
# ---------------------------------------------------------------------------


def _feed_some(pipeline, dataset, count):
    for i, t in enumerate(dataset.arrivals()):
        if i >= count:
            break
        pipeline.process(t)


def test_dead_worker_surfaces_in_finish(dataset):
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 2, executor="process", batch_size=16
    )
    with pipeline:
        _feed_some(pipeline, dataset, 64)
        victim = pipeline.executor._processes[0]
        victim.kill()
        victim.join(10)
        with pytest.raises(ShardFailure, match="shard 0"):
            pipeline.flush()


def test_dead_worker_surfaces_in_submit(dataset):
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 2, executor="process", batch_size=16
    )
    with pipeline:
        victim = pipeline.executor._processes[0]
        victim.kill()
        victim.join(10)
        with pytest.raises(ShardFailure, match="shard 0"):
            # Keep dispatching until the OS reports the peer gone; the
            # typed error must surface from the feed path, not hang.
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()


def test_close_unwinds_past_dead_worker(dataset):
    pipeline = PartitionedPipeline(
        _lossless_config(dataset), 3, executor="process", batch_size=16
    )
    executor = pipeline.executor
    _feed_some(pipeline, dataset, 48)
    executor._processes[0].kill()
    executor._processes[0].join(10)
    # MSG_ABORT to the dead shard 0 must not skip aborting + joining
    # shards 1 and 2.
    pipeline.close()
    assert all(not p.is_alive() for p in executor._processes)


def test_shard_failure_is_runtime_error():
    failure = ShardFailure(3, "boom")
    assert isinstance(failure, RuntimeError)
    assert failure.shard == 3
    assert failure.recoverable
    assert "shard 3 worker failed: boom" in str(failure)


# ---------------------------------------------------------------------------
# fault-plan plumbing
# ---------------------------------------------------------------------------


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec(0, "no-such-kind", at=1)
    with pytest.raises(ValueError):
        FaultSpec(-1, KIND_CRASH_BEFORE_BATCH, at=1)
    with pytest.raises(ValueError):
        FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=0)


def test_respawn_plan_strips_one_shot_specs():
    plan = FaultPlan((
        FaultSpec(0, KIND_CRASH_BEFORE_BATCH, at=2),
        FaultSpec(0, KIND_SLOW_RECV, at=1, param=0.01, persistent=True),
        FaultSpec(1, KIND_CRASH_BEFORE_BATCH, at=2),
    ))
    respawned = plan.respawn_plan(0)
    assert [s.kind for s in respawned.for_shard(0)] == [KIND_SLOW_RECV]
    # Other shards' specs are untouched.
    assert len(respawned.for_shard(1)) == 1


def test_chaos_plan_is_deterministic():
    assert chaos_plan(7, 4) == chaos_plan(7, 4)
    assert chaos_plan(7, 4) != chaos_plan(8, 4)
    plan = chaos_plan(7, 4)
    kinds = {s.kind for s in plan.specs}
    assert KIND_SIGKILL_BEFORE_BATCH in kinds
    assert KIND_HANG_BEFORE_BATCH in kinds
    assert KIND_CRASH_ON_MIGRATE in kinds
    assert all(s.kind in FAULT_KINDS for s in plan.specs)
    assert all(0 <= s.shard < 4 for s in plan.specs)


def test_supervision_config_validation():
    with pytest.raises(ValueError):
        SupervisionConfig(heartbeat_interval=-1)
    with pytest.raises(ValueError):
        SupervisionConfig(heartbeat_timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisionConfig(checkpoint_interval=-1)
    with pytest.raises(ValueError):
        SupervisionConfig(max_respawns=-1)
    # 0 disables a cadence rather than being invalid.
    disabled = SupervisionConfig(heartbeat_interval=0, checkpoint_interval=0)
    assert disabled.heartbeat_interval == 0


def test_supervised_executor_requires_supervision_type(dataset):
    config = _lossless_config(dataset)
    executor = SupervisedExecutor(config, 2, batch_size=16)
    try:
        assert executor.supervision == SupervisionConfig()
    finally:
        executor.close()
