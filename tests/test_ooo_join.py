"""Tests for the out-of-order-tolerating join mode (paper footnote 2 / Fig. 1).

``MSWJOperator(probe_out_of_order=True)`` probes on every arrival, so a
late tuple still derives its results — but the result stream itself is
then out of order and needs a :class:`ResultSorter` for ordered delivery.
"""

import random

import pytest

from repro import EquiPredicate, JoinCondition, MSWJOperator, StreamTuple
from repro.core.result_sorter import ResultSorter
from repro.streams.source import Dataset

from .reference import reference_join, result_key_set


def _t(stream, ts, seq=None, **values):
    return StreamTuple(
        ts=ts, values=values, stream=stream, seq=ts if seq is None else seq
    )


def _equi():
    return JoinCondition([EquiPredicate(0, "v", 1, "v")])


class TestLateProbing:
    def test_late_tuple_recovers_result(self):
        # Alg. 2 would lose this: the matching S1 tuple arrives late.
        strict = MSWJOperator([1_000, 1_000], _equi())
        strict.process(_t(0, 100, v=1))
        strict.process(_t(1, 500, v=2))
        assert strict.process(_t(1, 150, v=1)) == []  # out of order: lost

        tolerant = MSWJOperator([1_000, 1_000], _equi(), probe_out_of_order=True)
        tolerant.process(_t(0, 100, v=1))
        tolerant.process(_t(1, 500, v=2))
        results = tolerant.process(_t(1, 150, v=1))
        assert len(results) == 1

    def test_result_timestamp_is_max_component(self):
        op = MSWJOperator([1_000, 1_000], _equi(), probe_out_of_order=True)
        op.process(_t(0, 300, v=1))
        op.process(_t(0, 500, seq=2, v=9))
        results = op.process(_t(1, 200, v=1))  # late trigger, ts 200
        assert [r.ts for r in results] == [300]

    def test_pairwise_window_bounds_enforced(self):
        # Window 100: the candidate at ts 350 is beyond the late
        # trigger's upper reach (200 + 100), so no result.
        op = MSWJOperator([100, 100], _equi(), probe_out_of_order=True)
        op.process(_t(0, 350, v=1))
        assert op.process(_t(1, 200, v=1)) == []

    def test_requires_collect_mode(self):
        with pytest.raises(ValueError):
            MSWJOperator([100, 100], _equi(), collect_results=False,
                         probe_out_of_order=True)

    def test_no_duplicates_and_subset_of_truth(self):
        rng = random.Random(3)
        tuples = []
        seqs = [0, 0]
        for position in range(120):
            stream = rng.randrange(2)
            tuples.append(
                StreamTuple(
                    ts=rng.randrange(400),
                    values={"v": rng.randrange(3)},
                    stream=stream,
                    seq=seqs[stream],
                    arrival=position,
                )
            )
            seqs[stream] += 1
        ds = Dataset(tuples, num_streams=2)
        op = MSWJOperator([150, 150], _equi(), probe_out_of_order=True)
        produced = []
        for t in ds.arrivals():
            produced.extend(op.process(t))
        truth_keys = result_key_set(reference_join(ds, [150, 150], _equi()))
        produced_keys = result_key_set(produced)
        assert len(produced) == len(produced_keys)  # no duplicates
        assert produced_keys <= truth_keys

    def test_recovers_more_than_alg2_under_disorder(self):
        rng = random.Random(7)
        arrivals = []
        seqs = [0, 0]
        for position in range(200):
            stream = rng.randrange(2)
            base = position * 5
            delay = rng.choice([0, 0, 0, 60])
            arrivals.append(
                StreamTuple(
                    ts=max(0, base - delay),
                    values={"v": rng.randrange(2)},
                    stream=stream,
                    seq=seqs[stream],
                    arrival=position,
                )
            )
            seqs[stream] += 1
        strict = MSWJOperator([100, 100], _equi())
        tolerant = MSWJOperator([100, 100], _equi(), probe_out_of_order=True)
        strict_count = sum(len(strict.process(t)) for t in arrivals)
        tolerant_count = sum(len(tolerant.process(t)) for t in arrivals)
        assert tolerant_count > strict_count


class TestWithResultSorter:
    def test_sorter_restores_ordered_output(self):
        op = MSWJOperator([200, 200], _equi(), probe_out_of_order=True)
        sorter = ResultSorter(100)
        rng = random.Random(11)
        emitted = []
        seqs = [0, 0]
        for position in range(150):
            stream = rng.randrange(2)
            base = position * 4
            delay = rng.choice([0, 0, 40])
            t = StreamTuple(
                ts=max(0, base - delay),
                values={"v": 1},
                stream=stream,
                seq=seqs[stream],
                arrival=position,
            )
            seqs[stream] += 1
            for result in op.process(t):
                emitted.extend(sorter.process(result))
        emitted.extend(sorter.flush())
        timestamps = [r.ts for r in emitted]
        assert timestamps == sorted(timestamps)
        assert sorter.emitted == len(emitted)
