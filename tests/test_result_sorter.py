"""Unit tests for output-side result sorting (repro.core.result_sorter)."""

import pytest

from repro import JoinResult, StreamTuple
from repro.core.result_sorter import ResultSorter


def _result(ts):
    return JoinResult(ts, (StreamTuple(ts=ts, stream=0, seq=ts),))


def _feed(sorter, timestamps):
    out = []
    for ts in timestamps:
        out.extend(r.ts for r in sorter.process(_result(ts)))
    return out


class TestRelease:
    def test_k_zero_passthrough_in_order(self):
        sorter = ResultSorter(0)
        assert _feed(sorter, [1, 2, 3]) == [1, 2, 3]

    def test_reorders_within_buffer(self):
        sorter = ResultSorter(5)
        released = _feed(sorter, [10, 7, 9, 20])
        assert released == [7, 9, 10]

    def test_release_is_sorted(self):
        sorter = ResultSorter(3)
        released = _feed(sorter, [5, 2, 8, 4, 12, 9, 30])
        released += [r.ts for r in sorter.flush()]
        assert released == sorted(released)

    def test_flush_returns_rest_in_order(self):
        sorter = ResultSorter(100)
        _feed(sorter, [5, 2, 8])
        assert [r.ts for r in sorter.flush()] == [2, 5, 8]
        assert sorter.buffered == 0


class TestDiscarding:
    def test_straggler_below_watermark_discarded(self):
        sorter = ResultSorter(0)
        _feed(sorter, [10])          # watermark 10
        assert _feed(sorter, [5]) == []
        assert sorter.discarded == 1

    def test_discarded_results_never_emitted(self):
        sorter = ResultSorter(2)
        released = _feed(sorter, [10, 20, 5, 30])
        released += [r.ts for r in sorter.flush()]
        assert 5 not in released
        assert sorter.discarded == 1

    def test_in_order_contract_never_violated(self):
        sorter = ResultSorter(4)
        released = _feed(sorter, [10, 3, 14, 6, 2, 18, 11, 25])
        released += [r.ts for r in sorter.flush()]
        assert released == sorted(released)

    def test_emitted_plus_discarded_equals_input(self):
        sorter = ResultSorter(3)
        inputs = [10, 3, 14, 6, 2, 18, 11, 25, 1, 30]
        _feed(sorter, inputs)
        sorter.flush()
        assert sorter.emitted + sorter.discarded == len(inputs)


class TestValidation:
    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ResultSorter(-1)

    def test_counters_start_at_zero(self):
        sorter = ResultSorter(10)
        assert sorter.emitted == 0
        assert sorter.discarded == 0
        assert sorter.buffered == 0


class TestFlushContract:
    def test_flush_is_terminal_process_raises(self):
        sorter = ResultSorter(5)
        sorter.process(_result(10))
        sorter.flush()
        assert sorter.flushed
        with pytest.raises(RuntimeError):
            sorter.process(_result(20))

    def test_flush_is_idempotent_and_empty(self):
        sorter = ResultSorter(5)
        sorter.process(_result(10))
        assert [r.ts for r in sorter.flush()] == [10]
        assert sorter.flush() == []
        assert sorter.flush() == []

    def test_counters_stable_across_re_flush(self):
        sorter = ResultSorter(5)
        for ts in (10, 7, 20):
            sorter.process(_result(ts))
        sorter.flush()
        emitted_after_first = sorter.emitted
        sorter.flush()
        assert sorter.emitted == emitted_after_first
        assert sorter.buffered == 0
