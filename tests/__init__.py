"""Test package for the repro framework.

Making ``tests`` a package lets the modules that share the brute-force
reference implementation import it relatively (``from .reference import
reference_join``) regardless of the pytest invocation directory.
"""
