"""Unit tests for ground truth and recall measurement (repro.quality)."""

import pytest

from repro import (
    EquiPredicate,
    JoinCondition,
    RecallMeter,
    TruthIndex,
    compute_truth,
    from_tuple_specs,
)

from .reference import reference_join


class TestTruthIndex:
    def test_count_in_basic(self):
        index = TruthIndex([(10, 2), (20, 3), (30, 1)])
        assert index.count_in(0, 30) == 6
        assert index.count_in(10, 30) == 4  # lo exclusive
        assert index.count_in(10, 20) == 3
        assert index.count_in(25, 28) == 0

    def test_duplicate_timestamps_merge(self):
        index = TruthIndex([(10, 2), (10, 3)])
        assert index.count_in(0, 10) == 5

    def test_total(self):
        assert TruthIndex([(1, 4), (2, 6)]).total == 10

    def test_empty(self):
        index = TruthIndex([])
        assert index.total == 0
        assert index.count_in(0, 100) == 0
        assert index.max_ts() == 0

    def test_unsorted_input_rejected(self):
        with pytest.raises(ValueError):
            TruthIndex([(20, 1), (10, 1)])

    def test_count_up_to(self):
        index = TruthIndex([(10, 1), (20, 1)])
        assert index.count_up_to(15) == 1
        assert index.count_up_to(20) == 2


class TestComputeTruth:
    def _dataset(self):
        # Disordered arrival: the sorted replay must still find everything.
        return from_tuple_specs(
            [
                (0, 50, {"v": 1}),
                (1, 30, {"v": 1}),   # arrives after ts-50 tuple
                (0, 10, {"v": 1}),
                (1, 60, {"v": 1}),
            ],
            num_streams=2,
        )

    def test_matches_reference_join(self):
        ds = self._dataset()
        windows = [40, 40]
        condition = JoinCondition([EquiPredicate(0, "v", 1, "v")])
        truth = compute_truth(ds, windows, condition, keep_keys=True)
        expected = reference_join(ds, windows, condition)
        assert truth.index.total == len(expected)
        assert truth.keys == {r.key() for r in expected}

    def test_counts_only_mode(self):
        ds = self._dataset()
        truth = compute_truth(ds, [40, 40], JoinCondition([EquiPredicate(0, "v", 1, "v")]))
        assert truth.keys is None
        assert truth.index.total > 0


class TestRecallMeter:
    def _meter(self, period=100, warmup=0):
        truth = TruthIndex([(10, 2), (50, 2), (90, 2)])
        return RecallMeter(truth, period_ms=period, warmup_ms=warmup)

    def test_full_recall(self):
        meter = self._meter()
        meter.record_produced(10, 2)
        meter.record_produced(50, 2)
        meter.record_produced(90, 2)
        sample = meter.measure(100)
        assert sample is not None
        assert sample.recall == pytest.approx(1.0)

    def test_partial_recall(self):
        meter = self._meter()
        meter.record_produced(10, 2)
        meter.record_produced(50, 1)
        sample = meter.measure(100)
        assert sample.recall == pytest.approx(0.5)

    def test_window_excludes_old_results(self):
        meter = self._meter(period=50)
        meter.record_produced(10, 2)   # outside (50, 100]
        meter.record_produced(90, 2)
        sample = meter.measure(100)
        # truth in (50, 100] = 2 (ts 90); produced inside = 2.
        assert sample.recall == pytest.approx(1.0)
        assert sample.true == 2

    def test_warmup_suppresses_measurements(self):
        meter = self._meter(warmup=100)
        meter.record_produced(10, 2)
        assert meter.measure(99) is None
        assert meter.measurements == []

    def test_undefined_when_no_truth(self):
        truth = TruthIndex([(1_000, 5)])
        meter = RecallMeter(truth, period_ms=100, warmup_ms=0)
        assert meter.measure(500) is None

    def test_out_of_order_recording_folds_in(self):
        meter = self._meter()
        meter.record_produced(90, 1)
        meter.record_produced(10, 1)  # straggler (terminal flush)
        meter.record_produced(50, 1)
        assert meter.produced_in(0, 100) == 3
        assert meter.produced_in(0, 40) == 1

    def test_fulfillment(self):
        from repro import RecallMeasurement

        meter = self._meter()
        meter.measurements.extend(
            [
                RecallMeasurement(0, 0.99, 0, 0),
                RecallMeasurement(1, 0.90, 0, 0),
                RecallMeasurement(2, 0.80, 0, 0),
            ]
        )
        assert meter.fulfillment(0.9) == pytest.approx(2 / 3)
        assert meter.fulfillment(0.9, slack=0.99) == pytest.approx(2 / 3)
        assert meter.fulfillment(0.8) == pytest.approx(1.0)

    def test_fulfillment_vacuous_without_measurements(self):
        assert self._meter().fulfillment(0.99) == 1.0

    def test_recall_capped_at_one(self):
        meter = self._meter()
        meter.record_produced(50, 100)  # more than truth (defensive cap)
        sample = meter.measure(100)
        assert sample.recall == 1.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            RecallMeter(TruthIndex([]), period_ms=0)
