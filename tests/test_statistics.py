"""Unit tests for the Statistics Manager (repro.core.statistics)."""

import pytest

from repro import StatisticsManager, StreamStatistics, StreamTuple, coarse_delay


def _observe(manager, stream, ts, arrival, delay=None):
    t = StreamTuple(ts=ts, stream=stream, seq=0, arrival=arrival)
    # In the pipeline the K-slack buffer annotates delays; emulate that.
    t.delay = delay if delay is not None else 0
    manager.observe_arrival(t)
    return t


class TestCoarseDelay:
    def test_zero_maps_to_zero(self):
        assert coarse_delay(0, 10) == 0

    def test_buckets_are_left_open(self):
        # (0, g] → 1, (g, 2g] → 2
        assert coarse_delay(1, 10) == 1
        assert coarse_delay(10, 10) == 1
        assert coarse_delay(11, 10) == 2
        assert coarse_delay(20, 10) == 2

    def test_negative_clamped_to_zero(self):
        assert coarse_delay(-5, 10) == 0


class TestStreamStatistics:
    def test_pdf_of_no_observations_is_point_mass(self):
        s = StreamStatistics(granularity_ms=10)
        assert s.delay_pdf() == [1.0]

    def test_pdf_reflects_observed_delays(self):
        s = StreamStatistics(granularity_ms=10)
        for delay in (0, 0, 0, 10, 20):
            s.observe(delay, arrival_ms=0, ksync_ms=None)
        pdf = s.delay_pdf()
        assert pdf[0] == pytest.approx(0.6)
        assert pdf[1] == pytest.approx(0.2)
        assert pdf[2] == pytest.approx(0.2)

    def test_pdf_sums_to_one(self):
        s = StreamStatistics(granularity_ms=10)
        for delay in (0, 5, 13, 27, 41, 0, 8):
            s.observe(delay, arrival_ms=0, ksync_ms=None)
        assert sum(s.delay_pdf()) == pytest.approx(1.0)

    def test_max_coarse_delay(self):
        s = StreamStatistics(granularity_ms=10)
        for delay in (0, 35):
            s.observe(delay, arrival_ms=0, ksync_ms=None)
        assert s.max_coarse_delay() == 4  # 35 ∈ (30, 40]

    def test_rate_estimation(self):
        s = StreamStatistics(granularity_ms=10)
        for arrival in range(0, 1000, 100):
            s.observe(0, arrival_ms=arrival, ksync_ms=None)
        # 10 tuples over 900 ms span → 9 gaps / 900 ms = 0.01 per ms.
        assert s.rate_per_ms() == pytest.approx(0.01)

    def test_rate_needs_two_observations(self):
        s = StreamStatistics(granularity_ms=10)
        assert s.rate_per_ms() == 0.0
        s.observe(0, arrival_ms=5, ksync_ms=None)
        assert s.rate_per_ms() == 0.0

    def test_mean_ksync(self):
        s = StreamStatistics(granularity_ms=10)
        s.observe(0, arrival_ms=0, ksync_ms=100)
        s.observe(0, arrival_ms=1, ksync_ms=200)
        assert s.mean_ksync() == pytest.approx(150.0)

    def test_window_trimmed_after_change(self):
        # A large distribution change must shrink the ADWIN window, which
        # in turn drops old delays from the histogram.
        s = StreamStatistics(granularity_ms=10, adwin_delta=0.01)
        for _ in range(1_500):
            s.observe(0, arrival_ms=0, ksync_ms=None)
        for _ in range(1_500):
            s.observe(5_000, arrival_ms=0, ksync_ms=None)
        pdf = s.delay_pdf()
        # After the shift the window is dominated by the 5000 ms regime.
        assert pdf[0] < 0.5
        assert s.window_length < 3_000

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            StreamStatistics(granularity_ms=0)


class TestStatisticsManager:
    def test_local_and_app_time(self):
        m = StatisticsManager(2, granularity_ms=10)
        _observe(m, 0, ts=100, arrival=100)
        _observe(m, 1, ts=50, arrival=101)
        assert m.local_time(0) == 100
        assert m.local_time(1) == 50
        assert m.app_time() == 100

    def test_local_time_never_decreases(self):
        m = StatisticsManager(1, granularity_ms=10)
        _observe(m, 0, ts=100, arrival=0)
        _observe(m, 0, ts=40, arrival=1)
        assert m.local_time(0) == 100

    def test_ksync_sampled_only_after_all_streams_seen(self):
        m = StatisticsManager(2, granularity_ms=10)
        _observe(m, 0, ts=100, arrival=0)
        # No S1 tuple yet → no ksync samples recorded anywhere.
        assert m.streams[0].mean_ksync() == 0.0
        _observe(m, 1, ts=40, arrival=1)
        _observe(m, 0, ts=110, arrival=2)
        # S0's sample: 110 - min(110, 40) = 70.
        assert m.streams[0].mean_ksync() == pytest.approx(70.0)

    def test_ksync_estimates_rebased_to_slowest(self):
        m = StatisticsManager(2, granularity_ms=10)
        _observe(m, 0, ts=100, arrival=0)
        _observe(m, 1, ts=40, arrival=1)
        _observe(m, 0, ts=110, arrival=2)
        _observe(m, 1, ts=50, arrival=3)
        estimates = m.ksync_estimates_ms()
        assert min(estimates) == pytest.approx(0.0)
        assert estimates[0] > estimates[1]

    def test_max_delay_over_all_streams(self):
        m = StatisticsManager(2, granularity_ms=10)
        _observe(m, 0, ts=100, arrival=0, delay=25)
        _observe(m, 1, ts=100, arrival=1, delay=250)
        # Bucket of 250 is 25 → 25 * 10 ms.
        assert m.max_delay_ms() == 250

    def test_bad_stream_index_rejected(self):
        m = StatisticsManager(1, granularity_ms=10)
        with pytest.raises(ValueError):
            _observe(m, 3, ts=0, arrival=0)

    def test_delay_pdfs_per_stream(self):
        m = StatisticsManager(2, granularity_ms=10)
        _observe(m, 0, ts=0, arrival=0, delay=0)
        _observe(m, 1, ts=0, arrival=0, delay=15)
        pdfs = m.delay_pdfs()
        assert pdfs[0] == [1.0]
        assert pdfs[1][2] == pytest.approx(1.0)
