"""Tier-1 wiring of repro-lint (``tools/lint.py`` / :mod:`repro.analysis`).

Three layers, mirroring the docs gate's wiring:

* **fixture tests** — every rule fires on a minimal known-bad snippet
  and stays silent on the matching known-clean one, via
  :func:`repro.analysis.analyze_sources` (in-memory, no tmp files);
* **mutation tests** — seeding a deliberate contract break into the
  *real* engine sources (a ``StreamTuple`` slot the codec does not
  carry; a ``MSG_*`` dispatch arm removed from ``shard_worker``) makes
  the corresponding rule fail, proving the gate guards the actual
  modules and not just synthetic ones;
* **clean-tree regression** — ``src`` + ``tools`` + ``benchmarks`` lint
  clean, so any new finding fails the ordinary test suite before push.

The mypy/ruff halves of the lint gate run only when those tools are
installed (the CI ``lint`` job installs them; the runtime image may
not), guarded by ``shutil.which``.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    Rule,
    all_rules,
    analyze_paths,
    analyze_sources,
    register,
    select_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULES = {
    "codec-coverage",
    "protocol-exhaustiveness",
    "determinism",
    "flush-contract",
    "ipc-safety",
}


def rule_names(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# registry + engine machinery
# ---------------------------------------------------------------------------


def test_registry_has_every_engine_rule():
    names = {rule.name for rule in all_rules()}
    assert EXPECTED_RULES <= names


def test_select_rules_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown rule"):
        select_rules(["no-such-rule"])


def test_register_rejects_duplicate_and_anonymous_rules():
    class Anonymous(Rule):
        name = ""

    with pytest.raises(ValueError, match="no name"):
        register(Anonymous)

    class Imposter(Rule):
        name = "determinism"

    with pytest.raises(ValueError, match="duplicate"):
        register(Imposter)


def test_parse_errors_are_reported_not_raised():
    findings = analyze_sources({"broken.py": "def broken(:\n"})
    assert rule_names(findings) == ["parse-error"]
    assert findings[0].path == "broken.py"


def test_finding_format_is_path_line_col_rule():
    finding = Finding("determinism", "a.py", 3, 4, "msg")
    assert finding.format() == "a.py:3:4: determinism: msg"


# ---------------------------------------------------------------------------
# suppression pragmas
# ---------------------------------------------------------------------------


def test_line_pragma_suppresses_only_that_line():
    source = (
        "a = hash('x')  # repro-lint: disable=determinism\n"
        "b = hash('y')\n"
    )
    findings = analyze_sources({"s.py": source}, ["determinism"])
    assert [finding.line for finding in findings] == [2]


def test_file_pragma_suppresses_whole_file():
    source = (
        "# repro-lint: disable-file=determinism\n"
        "a = hash('x')\n"
        "b = hash('y')\n"
    )
    assert analyze_sources({"s.py": source}, ["determinism"]) == []


def test_pragma_inside_string_literal_does_not_suppress():
    source = 'note = "# repro-lint: disable=determinism"\na = hash(note)\n'
    findings = analyze_sources({"s.py": source}, ["determinism"])
    assert rule_names(findings) == ["determinism"]


def test_all_wildcard_suppresses_any_rule():
    source = "a = hash('x')  # repro-lint: disable=all\n"
    assert analyze_sources({"s.py": source}, ["determinism"]) == []


# ---------------------------------------------------------------------------
# codec-coverage fixtures
# ---------------------------------------------------------------------------

CODEC_CLEAN = '''
class StreamTuple:
    __slots__ = ("ts", "values")

    def __getstate__(self):
        return (self.ts, self.values)

    def __setstate__(self, state):
        self.ts, self.values = state


class TupleBlock:
    __slots__ = ("ts", "columns")


class BlockEncoder:
    def encode(self, batch):
        return TupleBlock([t.ts for t in batch], [t.values for t in batch])


class BlockDecoder:
    def decode(self, block):
        return [
            StreamTuple.restore(ts, values)
            for ts, values in zip(block.ts, block.columns)
        ]
'''


def test_codec_coverage_clean_fixture_passes():
    findings = analyze_sources({"codec.py": CODEC_CLEAN}, ["codec-coverage"])
    assert findings == []


def test_codec_coverage_flags_getstate_dropping_a_slot():
    bad = CODEC_CLEAN.replace(
        "return (self.ts, self.values)", "return (self.ts,)"
    )
    findings = analyze_sources({"codec.py": bad}, ["codec-coverage"])
    assert any("__getstate__ never reads slot 'values'" in f.message for f in findings)


def test_codec_coverage_flags_setstate_dropping_a_slot():
    bad = CODEC_CLEAN.replace(
        "self.ts, self.values = state", "self.ts = state[0]"
    )
    findings = analyze_sources({"codec.py": bad}, ["codec-coverage"])
    assert any("__setstate__ never stores slot 'values'" in f.message for f in findings)


def test_codec_coverage_flags_encoder_missing_a_slot():
    bad = CODEC_CLEAN.replace(
        "return TupleBlock([t.ts for t in batch], [t.values for t in batch])",
        "return TupleBlock([t.ts for t in batch], [])",
    )
    findings = analyze_sources({"codec.py": bad}, ["codec-coverage"])
    assert any(
        "BlockEncoder.encode never reads StreamTuple slot 'values'" in f.message
        for f in findings
    )


def test_codec_coverage_flags_block_missing_a_column():
    bad = CODEC_CLEAN.replace(
        'class TupleBlock:\n    __slots__ = ("ts", "columns")',
        'class TupleBlock:\n    __slots__ = ("columns",)',
    )
    findings = analyze_sources({"codec.py": bad}, ["codec-coverage"])
    assert any(
        "TupleBlock has no column for StreamTuple slot 'ts'" in f.message
        for f in findings
    )


def test_codec_coverage_flags_restore_arity_mismatch():
    bad = CODEC_CLEAN.replace(
        "StreamTuple.restore(ts, values)", "StreamTuple.restore(ts)"
    )
    findings = analyze_sources({"codec.py": bad}, ["codec-coverage"])
    assert any("restore call passes 1 argument(s)" in f.message for f in findings)


def test_codec_coverage_flags_unconsumed_dataclass_field():
    source = '''
from dataclasses import dataclass


@dataclass
class MigrationSpec:
    moves: dict
    beacon_ts: int


def use(spec):
    return spec.moves
'''
    findings = analyze_sources({"spec.py": source}, ["codec-coverage"])
    assert any(
        "MigrationSpec field 'beacon_ts' is never read" in f.message
        for f in findings
    )


def test_codec_coverage_inert_without_the_named_classes():
    source = "class Unrelated:\n    __slots__ = ('x',)\n"
    assert analyze_sources({"other.py": source}, ["codec-coverage"]) == []


# ---------------------------------------------------------------------------
# codec-coverage: cold-segment checks
# ---------------------------------------------------------------------------

COLD_SEGMENT_CLEAN = '''
class ColdSegment:
    __slots__ = ("block", "slots", "min_ts")

    def __getstate__(self):
        return (self.block, self.slots, self.min_ts)

    def __setstate__(self, state):
        self.block, self.slots, self.min_ts = state


def freeze_segment(batch, slots, encoder):
    block = encoder.encode(batch)
    return ColdSegment(block, slots, min(t.ts for t in batch))


def thaw_segment(segment, decoder):
    return decoder.decode(segment.block)
'''


def test_cold_segment_clean_fixture_passes():
    findings = analyze_sources(
        {"cold.py": COLD_SEGMENT_CLEAN}, ["codec-coverage"]
    )
    assert findings == []


def test_cold_segment_flags_missing_pickle_pair():
    bad = COLD_SEGMENT_CLEAN.replace(
        "    def __getstate__(self):\n"
        "        return (self.block, self.slots, self.min_ts)\n\n",
        "",
    )
    findings = analyze_sources({"cold.py": bad}, ["codec-coverage"])
    assert any(
        "ColdSegment defines no __getstate__" in f.message for f in findings
    )


def test_cold_segment_flags_freeze_bypassing_the_codec():
    bad = COLD_SEGMENT_CLEAN.replace(
        "block = encoder.encode(batch)",
        "block = [(t.ts, t.values) for t in batch]",
    )
    findings = analyze_sources({"cold.py": bad}, ["codec-coverage"])
    assert any(
        "freeze_segment never calls .encode(...)" in f.message
        for f in findings
    )


def test_cold_segment_flags_thaw_bypassing_the_codec():
    bad = COLD_SEGMENT_CLEAN.replace(
        "return decoder.decode(segment.block)", "return list(segment.block)"
    )
    findings = analyze_sources({"cold.py": bad}, ["codec-coverage"])
    assert any(
        "thaw_segment never calls .decode(...)" in f.message for f in findings
    )


def test_cold_segment_flags_construction_missing_a_slot():
    bad = COLD_SEGMENT_CLEAN.replace(
        "return ColdSegment(block, slots, min(t.ts for t in batch))",
        "return ColdSegment(block, slots)",
    )
    findings = analyze_sources({"cold.py": bad}, ["codec-coverage"])
    assert any(
        "passes 2 argument(s) but ColdSegment has 3 slots" in f.message
        for f in findings
    )


def test_cold_segment_flags_lost_codec_entry_points():
    bad = COLD_SEGMENT_CLEAN.replace("def freeze_segment", "def make_segment")
    findings = analyze_sources({"cold.py": bad}, ["codec-coverage"])
    assert any(
        "no freeze_segment() exists" in f.message for f in findings
    )


def test_cold_segment_new_streamtuple_slot_is_caught_via_encoder():
    """The scenario the check exists for: a slot added to StreamTuple
    must not silently miss the cold-tier encode path.  Because
    freeze_segment is pinned to delegate to BlockEncoder.encode, the
    existing StreamTuple↔codec check fires on the shared encoder —
    covering frozen segments by construction."""
    combined = CODEC_CLEAN.replace(
        '__slots__ = ("ts", "values")',
        '__slots__ = ("ts", "values", "origin")',
    ).replace(
        "return (self.ts, self.values)",
        "return (self.ts, self.values, self.origin)",
    ).replace(
        "self.ts, self.values = state",
        "self.ts, self.values, self.origin = state",
    ) + COLD_SEGMENT_CLEAN
    findings = analyze_sources({"codec.py": combined}, ["codec-coverage"])
    assert any(
        "BlockEncoder.encode never reads StreamTuple slot 'origin'"
        in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# protocol-exhaustiveness fixtures
# ---------------------------------------------------------------------------

PROTOCOL_CLEAN = '''
MSG_BATCH = "batch"
MSG_FLUSH = "flush"


def parent(conn, payload):
    conn.send((MSG_BATCH, payload))
    conn.send((MSG_FLUSH, None))


def worker(conn):
    while True:
        tag, payload = conn.recv()
        if tag == MSG_FLUSH:
            break
        if tag != MSG_BATCH:
            raise ValueError(tag)
'''


def test_protocol_clean_fixture_passes():
    findings = analyze_sources(
        {"proto.py": PROTOCOL_CLEAN}, ["protocol-exhaustiveness"]
    )
    assert findings == []


def test_protocol_flags_tag_without_dispatch_arm():
    bad = PROTOCOL_CLEAN.replace(
        "        if tag != MSG_BATCH:\n            raise ValueError(tag)\n", ""
    )
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_BATCH has no dispatch arm" in f.message for f in findings
    )


def test_protocol_flags_tag_never_sent():
    bad = PROTOCOL_CLEAN.replace("    conn.send((MSG_FLUSH, None))\n", "")
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any("MSG_FLUSH is never sent" in f.message for f in findings)


def test_protocol_flags_stale_arm_against_undefined_tag():
    bad = PROTOCOL_CLEAN + (
        "\n\ndef stale(tag):\n    return tag == MSG_GONE\n"
    )
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any("undefined protocol tag MSG_GONE" in f.message for f in findings)


def test_protocol_flags_duplicate_dispatch_arm():
    bad = PROTOCOL_CLEAN.replace(
        "        if tag != MSG_BATCH:",
        "        if tag == MSG_FLUSH:\n            continue\n"
        "        if tag != MSG_BATCH:",
    )
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any("duplicate dispatch arm for MSG_FLUSH" in f.message for f in findings)


def test_protocol_flags_raw_literal_in_dispatch_function():
    bad = PROTOCOL_CLEAN.replace(
        '        if tag == MSG_FLUSH:',
        '        if tag == "flush":',
    )
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any("raw tag literal 'flush'" in f.message for f in findings)


def test_protocol_reply_literals_outside_dispatch_are_clean():
    # The executors compare reply tags ("ok"/"state") that are not MSG_*
    # values; a function with no MSG_* comparisons is not a dispatcher.
    source = PROTOCOL_CLEAN + (
        '\n\ndef reply_check(tag):\n    return tag == "ok"\n'
    )
    findings = analyze_sources({"proto.py": source}, ["protocol-exhaustiveness"])
    assert findings == []


SOCKET_PROTOCOL_CLEAN = '''
MSG_JOIN = "join"
MSG_CLOSE = "close"


def dial(conn, spec, port):
    conn.send((MSG_JOIN, spec))
    conn.send_frame((MSG_CLOSE, port))


def node(conn):
    while True:
        tag, payload = conn.recv()
        if tag != MSG_JOIN:
            raise ValueError(tag)
        if tag == MSG_CLOSE:
            break
'''


def test_protocol_socket_handshake_tags_are_covered():
    # The socket runtime's MSG_JOIN/MSG_CLOSE extensions follow the same
    # contract as the pipe tags: defined, sent, dispatched.
    findings = analyze_sources(
        {"sock.py": SOCKET_PROTOCOL_CLEAN}, ["protocol-exhaustiveness"]
    )
    assert findings == []


def test_protocol_counts_send_frame_as_a_sender():
    # send_frame is the SocketConnection framing layer; a tag whose only
    # sender goes through it must register as sent, not dead protocol.
    source = '''
MSG_CLOSE = "close"


def dial(conn, port):
    conn.send_frame((MSG_CLOSE, port))


def node(tag):
    return tag == MSG_CLOSE
'''
    findings = analyze_sources(
        {"sock.py": source}, ["protocol-exhaustiveness"]
    )
    assert not any("never sent" in f.message for f in findings)


def test_protocol_inert_without_msg_constants():
    source = "def f(conn):\n    conn.send(('anything', 1))\n"
    assert analyze_sources({"p.py": source}, ["protocol-exhaustiveness"]) == []


# Mirrors the supervision extension: heartbeat (MSG_PING → MSG_PONG echo)
# and checkpoint round-trips where the worker's *reply* reuses the request
# tag, so the reply send and the parent-side comparison complete the pair.
PROTOCOL_SUPERVISED = '''
MSG_BATCH = "batch"
MSG_PING = "ping"
MSG_PONG = "pong"
MSG_CHECKPOINT = "checkpoint"


def supervisor(conn, payload, nonce):
    conn.send((MSG_BATCH, payload))
    conn.send((MSG_PING, nonce))
    tag, echoed = conn.recv()
    if tag != MSG_PONG:
        raise ValueError(tag)
    conn.send((MSG_CHECKPOINT, nonce))
    tag, record = conn.recv()
    if tag != MSG_CHECKPOINT:
        raise ValueError(tag)
    return record


def worker(conn):
    while True:
        tag, payload = conn.recv()
        if tag == MSG_PING:
            conn.send((MSG_PONG, payload))
            continue
        if tag == MSG_CHECKPOINT:
            conn.send((MSG_CHECKPOINT, payload))
            continue
        if tag != MSG_BATCH:
            raise ValueError(tag)
'''


def test_protocol_supervised_fixture_passes():
    findings = analyze_sources(
        {"proto.py": PROTOCOL_SUPERVISED}, ["protocol-exhaustiveness"]
    )
    assert findings == []


def test_protocol_flags_ping_without_worker_arm():
    bad = PROTOCOL_SUPERVISED.replace(
        "        if tag == MSG_PING:\n"
        "            conn.send((MSG_PONG, payload))\n"
        "            continue\n",
        "",
    )
    assert bad != PROTOCOL_SUPERVISED
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    messages = [f.message for f in findings]
    assert any("MSG_PING has no dispatch arm" in m for m in messages)
    assert any("MSG_PONG is never sent" in m for m in messages)


def test_protocol_flags_pong_never_checked():
    bad = PROTOCOL_SUPERVISED.replace(
        "    if tag != MSG_PONG:\n        raise ValueError(tag)\n", ""
    )
    assert bad != PROTOCOL_SUPERVISED
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_PONG has no dispatch arm" in f.message for f in findings
    )


def test_protocol_flags_checkpoint_with_no_dispatch_arm():
    # Dropping the worker's arm alone is clean — the supervisor's reply
    # check still dispatches on the tag; dropping both sides flags it.
    bad = PROTOCOL_SUPERVISED.replace(
        "        if tag == MSG_CHECKPOINT:\n"
        "            conn.send((MSG_CHECKPOINT, payload))\n"
        "            continue\n",
        "",
    ).replace(
        "    tag, record = conn.recv()\n"
        "    if tag != MSG_CHECKPOINT:\n"
        "        raise ValueError(tag)\n",
        "    tag, record = conn.recv()\n",
    )
    assert bad != PROTOCOL_SUPERVISED
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_CHECKPOINT has no dispatch arm" in f.message for f in findings
    )


def test_protocol_flags_raw_ping_literal_in_dispatcher():
    bad = PROTOCOL_SUPERVISED.replace(
        "        if tag == MSG_PING:", '        if tag == "ping":'
    )
    assert bad != PROTOCOL_SUPERVISED
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any("raw tag literal 'ping'" in f.message for f in findings)


# Mirrors the shm-transport extension: bulky messages ride a ring behind
# a (MSG_RING, seq) doorbell, replies come back via (MSG_RING_REPLY, seq),
# and workers confirm consumption with (MSG_CREDIT, count).  Sends go
# through the _send_message/_reply wrappers — which SEND_CALLEES must
# recognize, or every doorbell-delivered tag reads as dead protocol.
PROTOCOL_RING = '''
MSG_BATCH = "batch"
MSG_CREDIT = "credit"
MSG_RING = "ring"
MSG_RING_REPLY = "ring_reply"


def parent(conn, ring, frame, payload):
    seq = ring.write_frame(frame)
    conn.send((MSG_RING, seq))
    _send_message(conn, (MSG_BATCH, payload))
    tag, granted = conn.recv()
    if tag == MSG_CREDIT:
        return granted
    if tag != MSG_RING_REPLY:
        raise ValueError(tag)
    return ring.read_frame(granted)


def _send_message(conn, message):
    conn.send(message)


def _reply(conn, ring, message):
    seq = ring.write_frame(message)
    conn.send((MSG_RING_REPLY, seq))


def worker(conn, ring, consumed):
    while True:
        tag, payload = conn.recv()
        if tag == MSG_RING:
            tag, payload = ring.read_frame(payload)
        if tag != MSG_BATCH:
            raise ValueError(tag)
        consumed += 1
        conn.send((MSG_CREDIT, consumed))
        _reply(conn, ring, (MSG_BATCH, payload))
'''


def test_protocol_ring_fixture_passes():
    findings = analyze_sources(
        {"proto.py": PROTOCOL_RING}, ["protocol-exhaustiveness"]
    )
    assert findings == []


def test_protocol_flags_credit_sent_but_never_dispatched():
    bad = PROTOCOL_RING.replace(
        "    if tag == MSG_CREDIT:\n        return granted\n", ""
    )
    assert bad != PROTOCOL_RING
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_CREDIT has no dispatch arm" in f.message for f in findings
    )


def test_protocol_flags_ring_doorbell_without_worker_arm():
    bad = PROTOCOL_RING.replace(
        "        if tag == MSG_RING:\n"
        "            tag, payload = ring.read_frame(payload)\n",
        "",
    )
    assert bad != PROTOCOL_RING
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_RING has no dispatch arm" in f.message for f in findings
    )


def test_protocol_recognizes_wrapper_sends():
    # Route MSG_RING_REPLY's only send through the _reply wrapper (drop
    # the direct conn.send variant): still a live tag, not dead protocol.
    bad = PROTOCOL_RING.replace(
        "def _reply(conn, ring, message):\n"
        "    seq = ring.write_frame(message)\n"
        '    conn.send((MSG_RING_REPLY, seq))\n',
        "def _reply(conn, ring, message):\n"
        "    ring.write_frame(message)\n",
    )
    assert bad != PROTOCOL_RING
    findings = analyze_sources({"proto.py": bad}, ["protocol-exhaustiveness"])
    assert any(
        "MSG_RING_REPLY is never sent" in f.message for f in findings
    ), "dropping the last real send must flag the tag"
    fixed = bad.replace(
        "        _reply(conn, ring, (MSG_BATCH, payload))",
        "        _reply(conn, ring, (MSG_RING_REPLY, payload))",
    )
    assert analyze_sources(
        {"proto.py": fixed}, ["protocol-exhaustiveness"]
    ) == [], "a tuple passed to the _reply wrapper is a recognized send"


# ---------------------------------------------------------------------------
# determinism fixtures
# ---------------------------------------------------------------------------


def test_determinism_flags_builtin_hash_but_not_dunder_hash():
    source = '''
def route(key):
    return hash(key) % 4


class Key:
    def __hash__(self):
        return hash(("k", 1))
'''
    findings = analyze_sources({"d.py": source}, ["determinism"])
    assert [finding.line for finding in findings] == [3]


def test_determinism_flags_global_random_and_unseeded_rng():
    source = '''
import random
from random import randint


def draw():
    a = random.random()
    b = randint(0, 9)
    rng = random.Random()
    good = random.Random(42)
    return a, b, rng, good
'''
    findings = analyze_sources({"d.py": source}, ["determinism"])
    assert [finding.line for finding in findings] == [7, 8, 9]


def test_determinism_flags_wall_clock_but_not_perf_counter():
    source = '''
import time
import datetime


def stamp():
    t0 = time.perf_counter()
    mono = time.monotonic()
    wall = time.time()
    day = datetime.datetime.now()
    return t0, mono, wall, day
'''
    findings = analyze_sources({"d.py": source}, ["determinism"])
    assert [finding.line for finding in findings] == [9, 10]


def test_determinism_flags_set_iteration_but_not_sorted_sets():
    source = '''
def shapes(items):
    for x in {i.kind for i in items}:
        print(x)
    ordered = [x for x in sorted({i.kind for i in items})]
    flat = list({i.kind for i in items})
    dedup = {i.kind for i in items}
    return ordered, flat, dedup
'''
    findings = analyze_sources({"d.py": source}, ["determinism"])
    assert [finding.line for finding in findings] == [3, 6]


# ---------------------------------------------------------------------------
# flush-contract fixtures
# ---------------------------------------------------------------------------


def test_flush_contract_flags_process_after_flush():
    source = '''
def drain(sorter, batch):
    out = sorter.flush()
    sorter.process(batch)
    return out
'''
    findings = analyze_sources({"f.py": source}, ["flush-contract"])
    assert len(findings) == 1
    assert "sorter.process() after sorter.flush()" in findings[0].message


def test_flush_contract_allows_reassignment_between():
    source = '''
def drain(batch):
    sorter = make()
    sorter.flush()
    sorter = make()
    sorter.process(batch)
'''
    assert analyze_sources({"f.py": source}, ["flush-contract"]) == []


def test_flush_contract_tracks_dotted_receivers_separately():
    source = '''
def drain(self, batch):
    self.a.flush()
    self.b.process(batch)
'''
    assert analyze_sources({"f.py": source}, ["flush-contract"]) == []


def test_flush_contract_is_scoped_per_function():
    source = '''
def finish(sorter):
    return sorter.flush()


def feed(sorter, batch):
    sorter.process(batch)
'''
    assert analyze_sources({"f.py": source}, ["flush-contract"]) == []


# ---------------------------------------------------------------------------
# ipc-safety fixtures
# ---------------------------------------------------------------------------


def test_ipc_safety_flags_lambda_generator_and_open_file():
    source = '''
def ship(executor, conn, batch):
    executor.submit(lambda: batch)
    conn.send((MSG, (x for x in batch)))
    executor.migrate(open("state.bin"))
'''
    findings = analyze_sources({"i.py": source}, ["ipc-safety"])
    messages = " | ".join(finding.message for finding in findings)
    assert len(findings) == 3
    assert "lambda" in messages
    assert "generator expression" in messages
    assert "open file" in messages


def test_ipc_safety_ignores_non_ipc_calls():
    source = '''
def local(batch):
    return sorted(batch, key=lambda t: t.ts)
'''
    assert analyze_sources({"i.py": source}, ["ipc-safety"]) == []


def test_ipc_safety_covers_ring_send_wrappers():
    # _send_message/_reply pickle their message for the shm ring — a
    # lambda or generator smuggled through them fails exactly like one
    # passed to conn.send, and the rule must see it.
    source = '''
def ship(self, conn, ring, batch):
    self._send_message(0, (MSG_BATCH, lambda: batch))
    _reply(conn, ring, ("ok", (t for t in batch)))
'''
    findings = analyze_sources({"i.py": source}, ["ipc-safety"])
    messages = " | ".join(finding.message for finding in findings)
    assert len(findings) == 2
    assert "lambda" in messages
    assert "generator expression" in messages


def test_ipc_safety_covers_socket_send_frame():
    # The socket transport's framing layer pickles its message exactly
    # like a pipe send — an unpicklable argument fails on the wire the
    # same way, and the rule must see it through send_frame too.
    source = '''
def ship(conn, batch):
    conn.send_frame((MSG_BATCH, lambda: batch))
'''
    findings = analyze_sources({"i.py": source}, ["ipc-safety"])
    assert len(findings) == 1
    assert "lambda" in findings[0].message
    assert "send_frame" in findings[0].message


# ---------------------------------------------------------------------------
# mutation tests: the gate guards the real engine sources
# ---------------------------------------------------------------------------


def _real_source(relative):
    return (REPO_ROOT / relative).read_text(encoding="utf-8")


def real_codec_index(**overrides):
    sources = {
        "src/repro/core/tuples.py": _real_source("src/repro/core/tuples.py"),
        "src/repro/core/blocks.py": _real_source("src/repro/core/blocks.py"),
    }
    sources.update(overrides)
    return sources


def test_real_codec_sources_pass_codec_coverage():
    findings = analyze_sources(real_codec_index(), ["codec-coverage"])
    assert findings == []


def test_seeded_streamtuple_slot_breaks_codec_coverage():
    tuples = _real_source("src/repro/core/tuples.py")
    mutated = tuples.replace(
        '__slots__ = ("ts", "values", "stream", "seq", "arrival", "delay")',
        '__slots__ = ("ts", "values", "stream", "seq", "arrival", "delay", '
        '"priority")',
    )
    assert mutated != tuples, "StreamTuple.__slots__ moved; update this test"
    findings = analyze_sources(
        real_codec_index(**{"src/repro/core/tuples.py": mutated}),
        ["codec-coverage"],
    )
    # The new slot is missing from the pickle state, the encoder, the
    # block columns, and the restore arity — all four sides must trip.
    messages = " | ".join(finding.message for finding in findings)
    assert "__getstate__ never reads slot 'priority'" in messages
    assert "BlockEncoder.encode never reads StreamTuple slot 'priority'" in messages
    assert "TupleBlock has no column for StreamTuple slot 'priority'" in messages
    assert "restore call passes" in messages


def test_seeded_missing_dispatch_arm_breaks_protocol_rule():
    shard = _real_source("src/repro/parallel/shard.py")
    mutated = shard.replace(
        "            if tag == MSG_MIGRATE_IN:", "            if False:"
    )
    assert mutated != shard, "shard_worker dispatch moved; update this test"
    findings = analyze_sources(
        {"src/repro/parallel/shard.py": mutated}, ["protocol-exhaustiveness"]
    )
    assert any(
        "MSG_MIGRATE_IN has no dispatch arm" in finding.message
        for finding in findings
    )


def test_real_shard_module_passes_protocol_rule():
    # supervision.py completes the protocol: MSG_PING / MSG_CHECKPOINT
    # sends (and the MSG_PONG comparisons) live on the supervising side.
    findings = analyze_sources(
        {
            "src/repro/parallel/shard.py": _real_source(
                "src/repro/parallel/shard.py"
            ),
            "src/repro/parallel/executors.py": _real_source(
                "src/repro/parallel/executors.py"
            ),
            "src/repro/parallel/supervision.py": _real_source(
                "src/repro/parallel/supervision.py"
            ),
        },
        ["protocol-exhaustiveness"],
    )
    assert findings == []


# ---------------------------------------------------------------------------
# clean-tree regression + CLI
# ---------------------------------------------------------------------------


def test_engine_tree_is_lint_clean():
    findings = analyze_paths(
        [
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tools"),
            str(REPO_ROOT / "benchmarks"),
        ]
    )
    formatted = "\n".join(finding.format() for finding in findings)
    assert findings == [], f"repro-lint findings:\n{formatted}"


def run_cli(*args):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


def test_cli_exits_zero_on_clean_tree():
    result = run_cli("src")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 finding(s)" in result.stderr


def test_cli_exits_one_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("a = hash('key')\n", encoding="utf-8")
    result = run_cli(str(bad))
    assert result.returncode == 1
    assert "determinism" in result.stdout


def test_cli_exits_two_on_unknown_rule():
    result = run_cli("--select", "no-such-rule", "src")
    assert result.returncode == 2


def test_cli_lists_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    listed = {line.split(":")[0] for line in result.stdout.splitlines() if line}
    assert EXPECTED_RULES <= listed


# ---------------------------------------------------------------------------
# mypy / ruff halves of the gate (run only when installed)
# ---------------------------------------------------------------------------


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_modules_pass():
    result = subprocess.run(
        ["mypy", "--config-file", str(REPO_ROOT / "mypy.ini")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_gate_passes():
    result = subprocess.run(
        ["ruff", "check", "src", "tools", "benchmarks", "tests"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
