"""Unit tests for datasets and arrival multiplexing (repro.streams.source)."""

import pytest

from repro import Dataset, StreamTuple, from_tuple_specs
from repro.streams.source import interleave_round_robin, merge_by_arrival


def _tuple(stream, ts, arrival, seq=0):
    return StreamTuple(ts=ts, stream=stream, seq=seq, arrival=arrival)


class TestDataset:
    def test_rejects_bad_stream_index(self):
        with pytest.raises(ValueError):
            Dataset([_tuple(stream=5, ts=0, arrival=0)], num_streams=2)

    def test_rejects_nonpositive_stream_count(self):
        with pytest.raises(ValueError):
            Dataset([], num_streams=0)

    def test_len_and_iteration(self):
        tuples = [_tuple(0, 1, 1), _tuple(1, 2, 2)]
        ds = Dataset(tuples, num_streams=2)
        assert len(ds) == 2
        assert list(ds) == tuples

    def test_sorted_by_timestamp_orders_globally(self):
        ds = Dataset(
            [_tuple(0, 30, 1), _tuple(1, 10, 2), _tuple(0, 20, 3, seq=1)],
            num_streams=2,
        )
        assert [t.ts for t in ds.sorted_by_timestamp()] == [10, 20, 30]

    def test_sorted_breaks_ties_by_arrival(self):
        first = _tuple(0, 10, 1)
        second = _tuple(1, 10, 2)
        ds = Dataset([first, second], num_streams=2)
        assert ds.sorted_by_timestamp() == [first, second]

    def test_stream_tuples_filters(self):
        ds = Dataset(
            [_tuple(0, 1, 1), _tuple(1, 2, 2), _tuple(0, 3, 3, seq=1)], num_streams=2
        )
        assert [t.ts for t in ds.stream_tuples(0)] == [1, 3]

    def test_max_timestamp(self):
        ds = Dataset([_tuple(0, 7, 1), _tuple(0, 3, 2, seq=1)], num_streams=1)
        assert ds.max_timestamp() == 7

    def test_max_timestamp_empty(self):
        assert Dataset([], num_streams=1).max_timestamp() == 0

    def test_max_delay_replays_local_time(self):
        # Arrival order: ts 10 then ts 4 (delay 6) then ts 12 (delay 0).
        ds = Dataset(
            [_tuple(0, 10, 1), _tuple(0, 4, 2, seq=1), _tuple(0, 12, 3, seq=2)],
            num_streams=1,
        )
        assert ds.max_delay() == 6

    def test_max_delay_is_per_stream(self):
        # S0 leads in time, S1 lags, but each stream is internally ordered:
        # no intra-stream delay.
        ds = Dataset(
            [_tuple(0, 100, 1), _tuple(1, 5, 2), _tuple(1, 6, 3, seq=1)],
            num_streams=2,
        )
        assert ds.max_delay() == 0

    def test_describe_mentions_name_and_counts(self):
        ds = Dataset([_tuple(0, 1, 1)], num_streams=1, name="demo")
        text = ds.describe()
        assert "demo" in text
        assert "1 tuples" in text


class TestMergeByArrival:
    def test_merges_in_arrival_order(self):
        s0 = [_tuple(0, 5, 10), _tuple(0, 6, 30, seq=1)]
        s1 = [_tuple(1, 1, 20)]
        merged = merge_by_arrival([s0, s1])
        assert [t.arrival for t in merged] == [10, 20, 30]

    def test_ties_broken_by_stream_index(self):
        s0 = [_tuple(0, 5, 10)]
        s1 = [_tuple(1, 1, 10)]
        merged = merge_by_arrival([s1, s0])
        assert [t.stream for t in merged] == [0, 1]


class TestInterleaveRoundRobin:
    def test_alternates_streams(self):
        s0 = [StreamTuple(ts=1, stream=0, seq=0), StreamTuple(ts=2, stream=0, seq=1)]
        s1 = [StreamTuple(ts=1, stream=1, seq=0), StreamTuple(ts=2, stream=1, seq=1)]
        merged = interleave_round_robin([s0, s1])
        assert [t.stream for t in merged] == [0, 1, 0, 1]

    def test_assigns_positional_arrivals(self):
        s0 = [StreamTuple(ts=1, stream=0, seq=0)]
        s1 = [StreamTuple(ts=1, stream=1, seq=0), StreamTuple(ts=2, stream=1, seq=1)]
        merged = interleave_round_robin([s0, s1])
        assert [t.arrival for t in merged] == [0, 1, 2]


class TestFromTupleSpecs:
    def test_builds_sequential_arrivals_and_seqs(self):
        ds = from_tuple_specs(
            [(0, 10, {"v": 1}), (1, 5), (0, 12)],
            num_streams=2,
        )
        tuples = list(ds)
        assert [t.arrival for t in tuples] == [0, 1, 2]
        assert [t.seq for t in tuples] == [0, 0, 1]
        assert tuples[0]["v"] == 1

    def test_rejects_malformed_spec(self):
        with pytest.raises(ValueError):
            from_tuple_specs([(0,)], num_streams=1)
