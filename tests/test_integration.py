"""End-to-end integration tests: the paper's qualitative claims, small scale.

These run the full framework (generators → K-slack → Synchronizer → MSWJ →
management plane) on shrunken versions of the paper's workloads and check
the *shape* of the paper's findings:

* complete disorder handling reaches recall ≈ 1 (Max-K-slack, Table II);
* no intra-stream handling loses recall under disorder (Fig. 6);
* the model-based approach fulfils the requirement with far less buffer
  than Max-K-slack (Fig. 7);
* higher Γ ⇒ larger average K (the latency/quality tradeoff).
"""

import pytest

from repro.experiments.configs import d3_experiment, soccer_experiment
from repro.experiments.runner import make_policy, run_experiment


def _quick_d3():
    # ~30 s of stream time at 10 tuples/s keeps the test fast.
    exp = d3_experiment()
    from repro import make_d3_syn, seconds

    exp.dataset_factory = lambda: make_d3_syn(
        duration_ms=seconds(30),
        seed=42,
        inter_arrival_ms=100,
        max_delay_ms=4_000,
        skew_change_interval_ms=(seconds(5), seconds(10)),
    )
    exp.invalidate()
    return exp


@pytest.fixture(scope="module")
def d3():
    exp = _quick_d3()
    exp.truth()  # warm the cache once for the module
    return exp


PIPELINE_KWARGS = dict(period_ms=10_000, interval_ms=1_000)


class TestBaselinesEndToEnd:
    def test_max_k_slack_near_full_recall(self, d3):
        result = run_experiment(
            d3, make_policy("max-k-slack"), gamma=0.99, **PIPELINE_KWARGS
        )
        assert result.overall_recall() > 0.97
        assert result.average_recall > 0.95

    def test_no_k_slack_loses_recall(self, d3):
        result = run_experiment(
            d3, make_policy("no-k-slack"), gamma=0.99, **PIPELINE_KWARGS
        )
        assert result.average_k_s == 0.0
        assert result.average_recall < 0.98  # visibly below full recall

    def test_max_k_slack_buffers_more_than_no_k_slack(self, d3):
        max_k = run_experiment(
            d3, make_policy("max-k-slack"), gamma=0.99, **PIPELINE_KWARGS
        )
        assert max_k.average_k_s > 0.5  # delays reach seconds


class TestModelBasedEndToEnd:
    def test_meets_requirement_with_smaller_buffer(self, d3):
        gamma = 0.9
        model = run_experiment(
            d3, make_policy("model-noneqsel", gamma), gamma=gamma, **PIPELINE_KWARGS
        )
        baseline = run_experiment(
            d3, make_policy("max-k-slack"), gamma=gamma, **PIPELINE_KWARGS
        )
        # The headline claim: less buffering at acceptable quality.
        assert model.average_k_s < baseline.average_k_s
        assert model.phi99 >= 0.5  # most measurements near the requirement

    def test_higher_gamma_needs_more_buffer(self, d3):
        low = run_experiment(
            d3, make_policy("model-noneqsel", 0.7), gamma=0.7, **PIPELINE_KWARGS
        )
        high = run_experiment(
            d3, make_policy("model-noneqsel", 0.999), gamma=0.999, **PIPELINE_KWARGS
        )
        assert low.average_k_s <= high.average_k_s

    def test_produced_never_exceeds_truth(self, d3):
        result = run_experiment(
            d3, make_policy("model-eqsel"), gamma=0.95, **PIPELINE_KWARGS
        )
        assert result.results_produced <= result.truth_total

    def test_adaptation_runs_and_is_fast(self, d3):
        result = run_experiment(
            d3, make_policy("model-noneqsel"), gamma=0.95, **PIPELINE_KWARGS
        )
        assert result.adaptations >= 20
        # Alg. 3 with g = 10 ms: well under 50 ms per step even in Python.
        assert result.average_adaptation_ms < 50.0


class TestSoccerEndToEnd:
    def test_theta_join_pipeline_runs(self):
        exp = soccer_experiment(scale=0.3, seed=3)
        result = run_experiment(
            exp, make_policy("model-noneqsel"), gamma=0.9, **PIPELINE_KWARGS
        )
        assert result.truth_total > 0
        assert 0.0 <= result.average_recall <= 1.0
        assert result.results_produced <= result.truth_total
