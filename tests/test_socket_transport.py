"""Tests for the socket-distributed runtime (ISSUE 10).

Four layers.  The :class:`SocketConnection` unit layer pins the framing
protocol itself: roundtrips, sequence verification, CRC detection, pipe
EOF/OSError semantics.  The executor identity layer proves the
load-bearing property of ``transport="socket"``: the canonical result
sequence and summed ``JoinStatistics`` of a join distributed across two
localhost ``NodeServer`` processes are byte-identical to the
single-process pipe executor at shards 1/2/4, over both window stores —
including across a mid-stream elastic node join (``pipeline.grow`` onto
a node started *after* the run began) and a node leave
(``pipeline.shrink``).  The recovery layer injects a socket drop and a
whole-node SIGKILL under supervision and requires indistinguishable
output plus evidence the faults actually fired.  The tree layer drives
:class:`DistributedTreeJoin` differentially against the in-process
:class:`TreeJoinOperator`, close orders included.
"""

import random
import socket

import pytest

from repro import (
    FixedKPolicy,
    PipelineConfig,
    TieredStoreConfig,
    ZipfValueSampler,
    equi_join_chain,
    from_tuple_specs,
    seconds,
)
from repro.distributed import (
    DistributedTreeJoin,
    NodeServer,
    SocketConnection,
    SocketIntegrityError,
    TreeJoinOperator,
    connect_worker,
)
from repro.distributed.runtime import KIND_SHARD, _WorkerSpec
from repro.faults import (
    FaultPlan,
    FaultSpec,
    KIND_NODE_SIGKILL,
    KIND_SOCKET_DROP,
)
from repro.parallel import PartitionedPipeline, SupervisionConfig

# ---------------------------------------------------------------------------
# SocketConnection unit tests
# ---------------------------------------------------------------------------


@pytest.fixture()
def conn_pair():
    left_sock, right_sock = socket.socketpair()
    left, right = SocketConnection(left_sock), SocketConnection(right_sock)
    yield left, right
    left.close()
    right.close()


def test_roundtrip_preserves_objects_and_interleaving(conn_pair):
    left, right = conn_pair
    left.send(("batch", [1, 2, 3]))
    left.send(("flush", None))
    right.send(("ok", "reply"))
    assert right.recv() == ("batch", [1, 2, 3])
    assert left.recv() == ("ok", "reply")
    assert right.recv() == ("flush", None)


def test_sequence_violation_is_an_integrity_error(conn_pair):
    left, right = conn_pair
    left.send("first")
    left.send("second")
    right.recv()
    # Regress the receiver's expectation: the next frame (seq 2) must
    # now look duplicated, and the mismatch must be typed, not silent.
    right._recv_seq = 5
    with pytest.raises(SocketIntegrityError, match="sequence"):
        right.recv()


def test_corrupted_payload_fails_crc(conn_pair):
    left, right = conn_pair
    import struct
    import zlib

    payload = b"payload-bytes"
    header = struct.pack("<QII", 1, len(payload), zlib.crc32(payload))
    # Flip one payload byte behind the framing layer's back.
    tampered = bytes([payload[0] ^ 0xFF]) + payload[1:]
    left._sock.sendall(header + tampered)
    with pytest.raises(SocketIntegrityError, match="CRC"):
        right.recv_bytes()


def test_peer_close_raises_eof(conn_pair):
    left, right = conn_pair
    left.close()
    with pytest.raises(EOFError):
        right.recv()


def test_closed_connection_rejects_send_and_poll(conn_pair):
    left, _right = conn_pair
    left.close()
    with pytest.raises(OSError):
        left.send("late")
    with pytest.raises(OSError):
        left.poll(0.0)


def test_poll_reflects_readability(conn_pair):
    left, right = conn_pair
    assert right.poll(0.0) is False
    left.send("wake")
    assert right.poll(1.0) is True
    assert right.recv() == "wake"


# ---------------------------------------------------------------------------
# NodeServer handshake edges
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def nodes():
    """Two localhost NodeServer processes shared by the identity tests."""
    spawned = [NodeServer.spawn() for _ in range(2)]
    yield [address for _, address in spawned]
    for process, _ in spawned:
        process.terminate()
        process.join(5)


def test_non_join_handshake_is_rejected(nodes):
    conn = SocketConnection(socket.create_connection(nodes[0], timeout=10))
    try:
        conn.send(("batch", [1, 2, 3]))
        tag, detail = conn.recv()
        assert tag == "error"
        assert "join" in detail
    finally:
        conn.close()


def test_connect_worker_fails_over_to_a_live_node(nodes):
    dead = ("127.0.0.1", 1)  # reserved port: connection refused
    spec = _WorkerSpec(kind=KIND_SHARD, index=0, config=_lossless_config(_dataset(12)))
    conn, node_pid, node_index = connect_worker([dead, nodes[0]], spec, preferred=0)
    try:
        assert node_index == 1
        assert node_pid > 0
    finally:
        conn.send(("abort", None))
        conn.close()


def test_connect_worker_raises_when_no_node_accepts():
    spec = _WorkerSpec(kind=KIND_SHARD, index=0, config=_lossless_config(_dataset(12)))
    with pytest.raises(ConnectionError, match="no NodeServer accepted"):
        connect_worker([("127.0.0.1", 1)], spec, preferred=0)


# ---------------------------------------------------------------------------
# executor identity: socket vs pipe, shards x stores, elastic, recovery
# ---------------------------------------------------------------------------


def _dataset(num_tuples=600, z=1.1, domain=48, seed=7, max_delay=300):
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, domain + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay)
        events.append((i % 3, i * 9, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"socket-{seed}")


def _lossless_config(dataset, store=None):
    k = dataset.max_delay()
    kwargs = {} if store is None else {"store": store}
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
        **kwargs,
    )


def _store(kind):
    return TieredStoreConfig(hot_budget=64) if kind == "tiered" else None


def _drive(dataset, config, shards, grow_at=None, grow_node=None,
           shrink_at=None, **kwargs):
    """Feed per-tuple with optional mid-stream resize; return
    (exact sequence, summed JoinStatistics)."""
    pipeline = PartitionedPipeline(config, shards, **kwargs)
    out = []
    with pipeline:
        for i, t in enumerate(dataset.arrivals()):
            if grow_at is not None and i == grow_at:
                if grow_node is not None:
                    pipeline.executor.add_node(grow_node)
                out.extend(pipeline.grow())
            if shrink_at is not None and i == shrink_at:
                out.extend(pipeline.shrink(0))
            out.extend(pipeline.process(t))
        out.extend(pipeline.flush())
        stats = pipeline.join_statistics()
    return [(r.ts, r.key()) for r in out], stats, pipeline


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


@pytest.fixture(scope="module")
def pipe_reference(dataset):
    """Pipe-transport process runs per store — the identity baseline."""
    cache = {}

    def _get(store=None, shards=4):
        key = ("tiered" if store is not None else "memory", shards)
        if key not in cache:
            config = _lossless_config(dataset, _store(store))
            sequence, stats, _ = _drive(dataset, config, shards, executor="process")
            cache[key] = (sequence, stats)
        return cache[key]

    return _get


@pytest.mark.parametrize("store", [None, "tiered"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_socket_matches_pipe_across_shards_and_stores(
    dataset, pipe_reference, nodes, shards, store
):
    ref_sequence, ref_stats = pipe_reference(store, shards)
    sequence, stats, _ = _drive(
        dataset, _lossless_config(dataset, _store(store)), shards,
        executor="process", transport="socket", nodes=nodes,
    )
    assert sequence == ref_sequence
    assert stats == ref_stats


def test_four_shards_span_both_nodes(dataset, nodes):
    """The acceptance topology really is distributed: both NodeServer
    processes host live workers (distinct node pids across shards)."""
    config = _lossless_config(dataset)
    _sequence, _stats, pipeline = _drive(
        dataset, config, 4, executor="process", transport="socket",
        nodes=nodes,
    )
    node_indexes = set(pipeline.executor._node_of)
    assert node_indexes == {0, 1}


def test_mid_stream_node_join_is_byte_identical(dataset, pipe_reference, nodes):
    """A NodeServer started mid-run adopts a grown shard through the
    migration barrier; output and statistics match the pipe executor
    growing at the same point — and, canonically, a static 4-shard run."""
    config = _lossless_config(dataset)
    ref_sequence, ref_stats, _ = _drive(
        dataset, config, 3, grow_at=300, executor="process",
        slots_per_shard=4,
    )
    process, address = NodeServer.spawn()
    try:
        sequence, stats, pipeline = _drive(
            dataset, config, 3, grow_at=300, grow_node=address,
            executor="process", transport="socket", nodes=list(nodes),
            slots_per_shard=4,
        )
        # The joined node (index 2) hosts the grown shard (shard 3).
        assert pipeline.executor._node_of[3] == 2
    finally:
        process.terminate()
        process.join(5)
    assert sequence == ref_sequence
    assert stats == ref_stats
    static_sequence, static_stats = pipe_reference(None, 4)
    assert sorted(sequence) == sorted(static_sequence)
    assert stats == static_stats


def test_mid_stream_node_leave_is_byte_identical(dataset, nodes):
    """Shrinking a shard mid-run (node leave) hands its slots to the
    survivors; canonical output and statistics match an undisturbed
    socket run."""
    config = _lossless_config(dataset)
    ref_sequence, ref_stats, _ = _drive(
        dataset, config, 3, shrink_at=300, executor="process",
        slots_per_shard=4,
    )
    sequence, stats, _ = _drive(
        dataset, config, 3, shrink_at=300, executor="process",
        transport="socket", nodes=nodes, slots_per_shard=4,
    )
    assert sequence == ref_sequence
    assert stats == ref_stats


def test_socket_identity_with_credit_window(dataset, pipe_reference, nodes):
    ref_sequence, ref_stats = pipe_reference(None, 2)
    sequence, stats, _ = _drive(
        dataset, _lossless_config(dataset), 2,
        executor="process", transport="socket", nodes=nodes,
        credit_window=1,
    )
    assert sequence == ref_sequence
    assert stats == ref_stats


def test_nodes_without_socket_transport_is_rejected(dataset, nodes):
    with pytest.raises(ValueError, match="only meaningful"):
        PartitionedPipeline(
            _lossless_config(dataset), 2, executor="process", nodes=nodes
        )


def test_socket_transport_without_nodes_is_rejected(dataset):
    with pytest.raises(ValueError, match="requires"):
        PartitionedPipeline(
            _lossless_config(dataset), 2, executor="process",
            transport="socket",
        )


# ---------------------------------------------------------------------------
# supervised recovery: socket drop and whole-node SIGKILL
# ---------------------------------------------------------------------------

SUP = SupervisionConfig(
    heartbeat_interval=4,
    heartbeat_timeout_s=5.0,
    checkpoint_interval=8,
    max_respawns=4,
    backoff_base_s=0.01,
)


@pytest.fixture(scope="module")
def supervised_reference(dataset):
    # batch_size=16 on the reference and every fault run: the plans are
    # batch-indexed, and small batches make them fire within this
    # dataset (same convention as test_supervision).
    config = _lossless_config(dataset)
    sequence, stats, _ = _drive(
        dataset, config, 2, executor="supervised", batch_size=16,
        supervision=SUP,
    )
    return sequence, stats


def test_supervised_socket_baseline_matches_pipe(
    dataset, supervised_reference, nodes
):
    ref_sequence, ref_stats = supervised_reference
    sequence, stats, _ = _drive(
        dataset, _lossless_config(dataset), 2, executor="supervised",
        batch_size=16, supervision=SUP, transport="socket", nodes=nodes,
    )
    assert sequence == ref_sequence
    assert stats == ref_stats


def test_socket_drop_recovers_byte_identically(
    dataset, supervised_reference, nodes
):
    ref_sequence, ref_stats = supervised_reference
    plan = FaultPlan((FaultSpec(0, KIND_SOCKET_DROP, at=5),))
    sequence, stats, pipeline = _drive(
        dataset, _lossless_config(dataset), 2, executor="supervised",
        batch_size=16, supervision=SUP, transport="socket", nodes=nodes,
        fault_plan=plan,
    )
    # Not vacuous: the drop really killed a worker and it was respawned.
    assert pipeline.executor.respawns >= 1, "fault plan never fired"
    assert sequence == ref_sequence
    assert stats == ref_stats


def test_node_sigkill_fails_over_byte_identically(dataset, supervised_reference):
    """A whole-node SIGKILL (PDEATHSIG takes its workers down with it)
    must recover by respawning onto the surviving node, byte-identically."""
    ref_sequence, ref_stats = supervised_reference
    victims = [NodeServer.spawn() for _ in range(2)]
    addresses = [address for _, address in victims]
    plan = FaultPlan((FaultSpec(0, KIND_NODE_SIGKILL, at=5),))
    try:
        sequence, stats, pipeline = _drive(
            dataset, _lossless_config(dataset), 2, executor="supervised",
            batch_size=16, supervision=SUP, transport="socket",
            nodes=addresses, fault_plan=plan,
        )
        assert pipeline.executor.respawns >= 1, "fault plan never fired"
        assert sequence == ref_sequence
        assert stats == ref_stats
        # The fault's target node really died.
        dead = [process for process, _ in victims if not process.is_alive()]
        assert dead
    finally:
        for process, _ in victims:
            if process.is_alive():
                process.terminate()
            process.join(5)


# ---------------------------------------------------------------------------
# elastic grow/shrink on the in-process executors (the barrier itself)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_grow_is_canonically_invisible(dataset, executor):
    config = _lossless_config(dataset)
    static_sequence, static_stats, _ = _drive(
        dataset, config, 3, executor=executor, slots_per_shard=4
    )
    grown_sequence, grown_stats, pipeline = _drive(
        dataset, config, 2, grow_at=200, executor=executor, slots_per_shard=6
    )
    assert pipeline.num_shards == 3
    assert pipeline.resizes == 1
    assert sorted(grown_sequence) == sorted(static_sequence)
    assert grown_stats == static_stats


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_shrink_is_canonically_invisible(dataset, executor):
    config = _lossless_config(dataset)
    static_sequence, static_stats, _ = _drive(
        dataset, config, 3, executor=executor, slots_per_shard=4
    )
    shrunk_sequence, shrunk_stats, pipeline = _drive(
        dataset, config, 3, shrink_at=200, executor=executor,
        slots_per_shard=4,
    )
    assert pipeline.resizes == 1
    assert sorted(shrunk_sequence) == sorted(static_sequence)
    assert shrunk_stats == static_stats


def test_shrink_last_live_shard_is_rejected(dataset):
    config = _lossless_config(dataset)
    with PartitionedPipeline(config, 1, slots_per_shard=4) as pipeline:
        with pytest.raises(ValueError, match="last live shard"):
            pipeline.shrink(0)


# ---------------------------------------------------------------------------
# distributed tree: differential vs the in-process operator
# ---------------------------------------------------------------------------


def _tree_reference(dataset, windows, condition, closes=()):
    tree = TreeJoinOperator(windows, condition)
    out = []
    closed = dict(closes)
    for i, t in enumerate(dataset.arrivals()):
        for stream in closed.pop(i, ()):
            out.extend(tree.close_stream(stream))
        if not tree._closed[t.stream]:
            out.extend(tree.process(t))
    out.extend(tree.flush())
    return [(r.ts, r.key()) for r in out]


def _tree_distributed(dataset, windows, condition, addresses, closes=()):
    out = []
    closed = dict(closes)
    with DistributedTreeJoin(windows, condition, nodes=addresses) as tree:
        for i, t in enumerate(dataset.arrivals()):
            for stream in closed.pop(i, ()):
                out.extend(tree.close_stream(stream))
            if not tree._closed[t.stream]:
                out.extend(tree.process(t))
        out.extend(tree.flush())
    return [(r.ts, r.key()) for r in out]


def test_distributed_tree_matches_in_process_tree(dataset, nodes):
    windows = [seconds(1)] * 3
    condition = equi_join_chain("a1", 3)
    assert _tree_distributed(dataset, windows, condition, nodes) == \
        _tree_reference(dataset, windows, condition)


@pytest.mark.parametrize(
    "closes",
    [
        ((300, (0,)),),
        ((200, (2,)), (400, (0,))),
        ((250, (1,)), (350, (0,)), (450, (2,))),
    ],
    ids=["close-left-first", "close-right-then-left", "close-all-mid-stream"],
)
def test_distributed_tree_close_orders_match(dataset, nodes, closes):
    windows = [seconds(1)] * 3
    condition = equi_join_chain("a1", 3)
    assert _tree_distributed(dataset, windows, condition, nodes, closes) == \
        _tree_reference(dataset, windows, condition, closes)


def test_distributed_tree_rejects_closed_stream_feed(nodes):
    windows = [seconds(1)] * 2
    condition = equi_join_chain("a1", 2)
    ds = _dataset(24)
    with DistributedTreeJoin(windows, condition, nodes=nodes) as tree:
        tree.close_stream(0)
        assert tree.close_stream(0) == []  # idempotent
        for t in ds.arrivals():
            if t.stream == 0:
                with pytest.raises(ValueError, match="already closed"):
                    tree.process(t)
                break
