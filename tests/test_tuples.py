"""Unit tests for the tuple and time model (repro.core.tuples)."""

import pytest

from repro import JoinResult, StreamTuple, ms, seconds, to_seconds


class TestTimeHelpers:
    def test_seconds_converts_to_ms(self):
        assert seconds(5) == 5000

    def test_seconds_handles_fractions(self):
        assert seconds(0.25) == 250

    def test_seconds_rounds_rather_than_truncates(self):
        assert seconds(0.0019) == 2

    def test_ms_is_identity_on_ints(self):
        assert ms(17) == 17

    def test_ms_rounds_floats(self):
        assert ms(16.7) == 17

    def test_to_seconds_inverts_seconds(self):
        assert to_seconds(seconds(3.5)) == pytest.approx(3.5)


class TestStreamTuple:
    def test_basic_construction(self):
        t = StreamTuple(ts=100, values={"a1": 7}, stream=1, seq=3, arrival=120)
        assert t.ts == 100
        assert t.stream == 1
        assert t.seq == 3
        assert t.arrival == 120

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            StreamTuple(ts=-1)

    def test_values_are_copied(self):
        source = {"a1": 7}
        t = StreamTuple(ts=0, values=source)
        source["a1"] = 99
        assert t["a1"] == 7

    def test_getitem_and_get(self):
        t = StreamTuple(ts=0, values={"x": 1.5})
        assert t["x"] == 1.5
        assert t.get("missing") is None
        assert t.get("missing", 42) == 42

    def test_delay_defaults_to_zero(self):
        assert StreamTuple(ts=5).delay == 0

    def test_equality_is_structural(self):
        a = StreamTuple(ts=10, values={"v": 1}, stream=0, seq=2)
        b = StreamTuple(ts=10, values={"v": 1}, stream=0, seq=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_different_stream(self):
        a = StreamTuple(ts=10, stream=0, seq=2)
        b = StreamTuple(ts=10, stream=1, seq=2)
        assert a != b

    def test_identity_triple(self):
        t = StreamTuple(ts=10, stream=2, seq=5)
        assert t.identity() == (2, 5, 10)


class TestJoinResult:
    def _components(self):
        return (
            StreamTuple(ts=5, stream=0, seq=0),
            StreamTuple(ts=8, stream=1, seq=1),
        )

    def test_key_is_component_identities(self):
        r = JoinResult(8, self._components())
        assert r.key() == ((0, 0, 5), (1, 1, 8))

    def test_equality(self):
        assert JoinResult(8, self._components()) == JoinResult(8, self._components())

    def test_hashable(self):
        assert len({JoinResult(8, self._components()), JoinResult(8, self._components())}) == 1

    def test_timestamp_stored(self):
        assert JoinResult(8, self._components()).ts == 8
