"""Unit tests for watermark-based disorder handling (repro.core.watermarks)."""

import pytest

from repro import StreamTuple
from repro.core.watermarks import (
    WatermarkBuffer,
    WatermarkFrontEnd,
    WatermarkGenerator,
)


def _t(ts, stream=0, seq=0):
    return StreamTuple(ts=ts, stream=stream, seq=seq)


class TestWatermarkGenerator:
    def test_watermark_lags_max_by_bound(self):
        gen = WatermarkGenerator(bound_ms=100)
        assert gen.observe(_t(500)) == 400

    def test_watermarks_monotone(self):
        gen = WatermarkGenerator(bound_ms=50)
        first = gen.observe(_t(500))
        assert first == 450
        # A late tuple does not regress the watermark.
        assert gen.observe(_t(100, seq=1)) is None
        assert gen.current == 450

    def test_emit_period(self):
        gen = WatermarkGenerator(bound_ms=0, emit_every=3)
        assert gen.observe(_t(10)) is None
        assert gen.observe(_t(20, seq=1)) is None
        assert gen.observe(_t(30, seq=2)) == 30

    def test_clamped_at_zero(self):
        gen = WatermarkGenerator(bound_ms=1_000)
        assert gen.observe(_t(10)) == 0 or gen.observe(_t(10)) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            WatermarkGenerator(-1)
        with pytest.raises(ValueError):
            WatermarkGenerator(10, emit_every=0)


class TestWatermarkBuffer:
    def test_holds_until_watermark(self):
        buffer = WatermarkBuffer()
        assert buffer.process(_t(100)) == []
        assert buffer.buffered == 1
        released = buffer.advance(100)
        assert [t.ts for t in released] == [100]

    def test_release_is_sorted(self):
        buffer = WatermarkBuffer()
        for seq, ts in enumerate([50, 20, 40, 10]):
            buffer.process(_t(ts, seq=seq))
        released = buffer.advance(45)
        assert [t.ts for t in released] == [10, 20, 40]

    def test_late_tuple_forwarded_immediately(self):
        buffer = WatermarkBuffer()
        buffer.process(_t(100))
        buffer.advance(100)
        late = _t(80, seq=1)
        assert buffer.process(late) == [late]
        assert buffer.late_tuples == 1

    def test_watermark_never_regresses(self):
        buffer = WatermarkBuffer()
        buffer.advance(100)
        assert buffer.advance(50) == []
        assert buffer.watermark == 100

    def test_flush(self):
        buffer = WatermarkBuffer()
        for seq, ts in enumerate([30, 10, 20]):
            buffer.process(_t(ts, seq=seq))
        assert [t.ts for t in buffer.flush()] == [10, 20, 30]
        assert buffer.buffered == 0


class TestWatermarkFrontEnd:
    def _run(self, bound, timestamps):
        front = WatermarkFrontEnd(num_streams=1, bound_ms=bound)
        out = []
        for seq, ts in enumerate(timestamps):
            out.extend(front.process(_t(ts, seq=seq)))
        out.extend(front.flush(0))
        return front, [t.ts for t in out]

    def test_conservation(self):
        timestamps = [10, 40, 20, 60, 30, 90, 80]
        __, released = self._run(30, timestamps)
        assert sorted(released) == sorted(timestamps)

    def test_sufficient_bound_yields_sorted_output(self):
        timestamps = [10, 40, 20, 60, 30, 90, 80]
        # Max delay here is 30 (ts 30 after ts 60): bound 30 sorts fully.
        __, released = self._run(30, timestamps)
        assert released == sorted(timestamps)

    def test_insufficient_bound_leaks_late_tuples(self):
        timestamps = [10, 100, 200, 20, 300, 400]
        front, released = self._run(10, timestamps)
        assert front.late_tuples() > 0
        assert released != sorted(released)

    def test_matches_kslack_with_equal_bound(self):
        """With per-tuple watermarks, the front end equals K-slack(K=bound)."""
        from repro import KSlackBuffer

        timestamps = [100, 40, 130, 90, 160, 150, 200, 170]
        bound = 60
        kslack = KSlackBuffer(bound)
        ks_out = []
        for seq, ts in enumerate(timestamps):
            ks_out.extend(x.ts for x in kslack.process(_t(ts, seq=seq)))
        ks_out.extend(x.ts for x in kslack.flush())
        __, wm_out = self._run(bound, timestamps)
        assert wm_out == ks_out

    def test_delay_annotation_set(self):
        front = WatermarkFrontEnd(num_streams=1, bound_ms=50)
        front.process(_t(100))
        late = _t(60, seq=1)
        front.process(late)
        assert late.delay == 40


class TestWatermarkFrontEndEdges:
    """Late-tuple accounting and the bound edge cases the bench relies on.

    ``bench_ext_watermarks.py`` sweeps fixed bounds against the adaptive
    manager but had no dedicated tests for the front end's accounting
    contract: exactly which tuples count as late (and are forwarded out
    of order — the "drop" the downstream join then realizes), and the
    degenerate bounds 0 and >= max delay.
    """

    def _run(self, bound, timestamps, emit_every=1):
        front = WatermarkFrontEnd(
            num_streams=1, bound_ms=bound, emit_every=emit_every
        )
        out = []
        for seq, ts in enumerate(timestamps):
            out.extend(front.process(_t(ts, seq=seq)))
        out.extend(front.flush(0))
        return front, [t.ts for t in out]

    def test_bound_zero_counts_every_non_advancing_tuple_late(self):
        # With bound 0 the watermark equals the max timestamp seen, so
        # any tuple not strictly advancing it — including ties — is late.
        timestamps = [10, 5, 20, 20, 30, 7]
        front, released = self._run(0, timestamps)
        assert front.late_tuples() == 3  # 5, the second 20, and 7
        assert sorted(released) == sorted(timestamps)  # forwarded, not lost

    def test_bound_zero_in_order_stream_has_no_late_tuples(self):
        front, released = self._run(0, [10, 20, 30, 40])
        assert front.late_tuples() == 0
        assert released == [10, 20, 30, 40]

    def test_bound_above_max_delay_never_drops(self):
        timestamps = [100, 40, 130, 90, 160, 150, 200, 170]
        # Realized max delay: 60 (ts 40 after ts 100).
        for bound in (61, 100, 10_000):
            front, released = self._run(bound, timestamps)
            assert front.late_tuples() == 0
            assert released == sorted(timestamps)

    def test_bound_equal_to_max_delay_still_leaks_boundary_tuple(self):
        # The watermark contract is strict: a tuple with ts <= watermark
        # (delay >= bound) is late, so bound == max delay still flags the
        # boundary tuple — one off from K-slack, whose release condition
        # (ts + K <= iT) keeps the delay == K tuple re-orderable.  This
        # is why the bench's watermark frontier needs bound *above* the
        # realized max delay for full recall.
        timestamps = [100, 40, 130, 90, 160, 150, 200, 170]
        for bound in (59, 60):
            front, released = self._run(bound, timestamps)
            assert front.late_tuples() == 1  # ts=40, delay 60
            assert sorted(released) == sorted(timestamps)  # forwarded, not lost

    def test_late_accounting_is_per_stream_and_summed(self):
        front = WatermarkFrontEnd(num_streams=2, bound_ms=0)
        for seq, (stream, ts) in enumerate(
            [(0, 10), (1, 100), (0, 5), (1, 50), (1, 40)]
        ):
            front.process(_t(ts, stream=stream, seq=seq))
        assert front.buffers[0].late_tuples == 1  # ts 5
        assert front.buffers[1].late_tuples == 2  # ts 50, 40
        assert front.late_tuples() == 3

    def test_periodic_watermarks_delay_late_detection(self):
        # With emit_every=3 the watermark only moves on every third
        # arrival, so a tuple that would be late under per-tuple
        # watermarks may still be buffered (and re-ordered) in between.
        timestamps = [100, 40, 130, 90, 160, 150]
        per_tuple, _ = self._run(0, timestamps)
        periodic, released = self._run(0, timestamps, emit_every=3)
        assert periodic.late_tuples() < per_tuple.late_tuples()
        assert sorted(released) == sorted(timestamps)

    def test_flush_releases_buffered_remainder_sorted(self):
        front = WatermarkFrontEnd(num_streams=1, bound_ms=1_000)
        for seq, ts in enumerate([50, 10, 40]):
            front.process(_t(ts, seq=seq))
        assert front.buffers[0].buffered == 3  # bound holds everything
        assert [t.ts for t in front.flush(0)] == [10, 40, 50]
