"""Tests for the shared-memory ring transport (ISSUE 9).

Two layers.  The :class:`ShmRing` unit/property layer pins the SPSC
frame protocol itself: roundtrips across physical wraparound, sequence
and CRC verification, torn writes staying invisible until publication,
bounded-time timeouts and peer-death aborts, and idempotent lifecycle.
The integration layer proves the load-bearing property of
``transport="shm"``: the canonical result sequence and summed
``JoinStatistics`` are byte-identical to the pipe transports at shards
1/2/4, over both window stores, static and rebalanced — the ring is a
pure carrier, invisible in every observable.  An autouse fixture scans
``/dev/shm`` around every test: no segment may outlive its test on any
path.
"""

import os
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FixedKPolicy,
    PipelineConfig,
    TRANSPORT_BLOCKS,
    TRANSPORT_SHM,
    TieredStoreConfig,
    ZipfValueSampler,
    equi_join_chain,
    from_tuple_specs,
    run_partitioned,
    seconds,
)
from repro.parallel.shm import (
    MIN_RING_BYTES,
    RingAborted,
    RingIntegrityError,
    RingTimeout,
    ShmRing,
)

# ---------------------------------------------------------------------------
# leak guard: every test must retire its segments on every path
# ---------------------------------------------------------------------------


def _ring_segments():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("repro-ring")}
    except FileNotFoundError:  # non-tmpfs platform: nothing to scan
        return set()


@pytest.fixture(autouse=True)
def no_ring_leaks():
    before = _ring_segments()
    yield
    leaked = _ring_segments() - before
    assert not leaked, f"shared-memory segments leaked: {sorted(leaked)}"


# ---------------------------------------------------------------------------
# ShmRing unit tests
# ---------------------------------------------------------------------------


@pytest.fixture()
def ring():
    r = ShmRing.create(MIN_RING_BYTES)
    yield r
    r.close()
    r.unlink()


def test_roundtrip_preserves_bytes_and_sequences(ring):
    assert ring.write_frame(b"alpha") == 1
    assert ring.write_frame(b"") == 2
    assert ring.read_frame(1) == b"alpha"
    assert ring.read_frame(2) == b""


def test_wraparound_split_frames_survive(ring):
    # MIN_RING_BYTES capacity with 16-byte frame headers: every few
    # frames one straddles the physical end of the segment.
    payloads = [bytes([i]) * (7 + (i * 11) % 37) for i in range(64)]
    for i, payload in enumerate(payloads):
        ring.write_frame(payload)
        assert ring.read_frame(i + 1) == payload


def test_fits_is_exact_and_oversized_write_raises(ring):
    largest = MIN_RING_BYTES - 16  # capacity minus the frame header
    assert ring.fits(largest)
    assert not ring.fits(largest + 1)
    with pytest.raises(ValueError, match="exceeds ring capacity"):
        ring.write_frame(b"x" * (largest + 1))
    ring.write_frame(b"x" * largest)
    assert ring.read_frame(1) == b"x" * largest


def test_sequence_mismatch_is_an_integrity_error(ring):
    ring.write_frame(b"frame")
    with pytest.raises(RingIntegrityError, match="sequence 1 != expected 7"):
        ring.read_frame(7)


def test_corrupted_payload_fails_crc(ring):
    ring.write_frame(b"payload-bytes")
    # Flip one payload byte behind the producer's back: header is 16
    # bytes of cursors, then the 16-byte frame header, then payload.
    ring._shm.buf[16 + 16] ^= 0xFF
    with pytest.raises(RingIntegrityError, match="CRC"):
        ring.read_frame(1)


def test_torn_write_is_invisible_until_published(ring):
    # A producer dying mid-copy leaves header+half-payload but no cursor
    # advance: the consumer sees an empty ring, and the next *complete*
    # write overwrites the wreckage.
    ring.torn_write(b"doomed-payload")
    with pytest.raises(RingTimeout):
        ring.read_frame(1, timeout_s=0.05)
    ring.write_frame(b"good")
    assert ring.read_frame(1) == b"good"


def test_empty_read_times_out_and_full_write_times_out(ring):
    with pytest.raises(RingTimeout, match="frame 1"):
        ring.read_frame(1, timeout_s=0.05)
    ring.write_frame(b"y" * (MIN_RING_BYTES - 16))  # ring now full
    with pytest.raises(RingTimeout, match="free ring space"):
        ring.write_frame(b"z", timeout_s=0.05)


def test_should_abort_surfaces_as_ring_aborted(ring):
    with pytest.raises(RingAborted, match="peer died"):
        ring.read_frame(1, should_abort=lambda: True)
    ring.write_frame(b"y" * (MIN_RING_BYTES - 16))
    with pytest.raises(RingAborted):
        ring.write_frame(b"z", should_abort=lambda: True)


def test_lifecycle_is_idempotent_and_attach_validates_size():
    ring = ShmRing.create(MIN_RING_BYTES)
    peer = ShmRing.attach(*ring.descriptor)
    with pytest.raises(ValueError, match="ring needs"):
        ShmRing.attach(ring.name, MIN_RING_BYTES * 64)
    peer.close()
    peer.close()  # idempotent
    peer.unlink()  # non-owner: must be a no-op, not an unlink
    assert ring.name in _ring_segments()
    ring.close()
    ring.unlink()
    ring.unlink()  # idempotent
    assert ring.name not in _ring_segments()


def test_create_rejects_sub_minimum_capacity():
    with pytest.raises(ValueError, match="capacity must be >="):
        ShmRing.create(MIN_RING_BYTES - 1)


def test_attach_side_writes_are_visible_to_creator():
    ring = ShmRing.create(MIN_RING_BYTES)
    try:
        peer = ShmRing.attach(*ring.descriptor)
        try:
            peer.write_frame(b"from-the-peer")
            assert ring.read_frame(1) == b"from-the-peer"
        finally:
            peer.close()
    finally:
        ring.close()
        ring.unlink()


@settings(max_examples=25, deadline=None)
@given(
    payloads=st.lists(
        st.binary(min_size=0, max_size=MIN_RING_BYTES - 16),
        min_size=1,
        max_size=30,
    )
)
def test_spsc_stream_is_lossless_across_wraparound(payloads):
    """Property: a concurrent producer/consumer pair moves any frame
    sequence through a minimum-size ring byte-for-byte, in order."""
    ring = ShmRing.create(MIN_RING_BYTES)
    peer = ShmRing.attach(*ring.descriptor)
    received = []
    try:
        def consume():
            for i in range(len(payloads)):
                received.append(peer.read_frame(i + 1, timeout_s=10.0))

        consumer = threading.Thread(target=consume)
        consumer.start()
        for payload in payloads:
            ring.write_frame(payload, timeout_s=10.0)
        consumer.join(timeout=10.0)
        assert not consumer.is_alive()
        assert received == payloads
    finally:
        peer.close()
        ring.close()
        ring.unlink()


# ---------------------------------------------------------------------------
# transport identity: shm vs pipe, shards x stores, static + rebalanced
# ---------------------------------------------------------------------------


def _dataset(num_tuples=900, z=1.1, domain=48, seed=7, max_delay=300):
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, domain + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay)
        events.append((i % 3, i * 9, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"shm-{seed}")


def _lossless_config(dataset, store=None):
    k = dataset.max_delay()
    kwargs = {} if store is None else {"store": store}
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
        **kwargs,
    )


def _canonical(results):
    return sorted((r.ts, r.key()) for r in results)


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


@pytest.fixture(scope="module")
def pipe_reference(dataset):
    """Block-transport process run per store — the identity baseline."""
    cache = {}

    def _get(store=None):
        key = "tiered" if store is not None else "memory"
        if key not in cache:
            config = _lossless_config(dataset, _store(store))
            outputs, _ = run_partitioned(
                dataset, config, 2, executor="process",
                transport=TRANSPORT_BLOCKS, chunk_size=64,
            )
            cache[key] = _canonical(outputs)
        return cache[key]

    return _get


def _store(kind):
    return TieredStoreConfig(hot_budget=64) if kind == "tiered" else None


@pytest.mark.parametrize("store", [None, "tiered"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shm_matches_pipe_across_shards_and_stores(
    dataset, pipe_reference, shards, store
):
    ref = pipe_reference(store)
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset, _store(store)), shards,
        executor="process", transport=TRANSPORT_SHM, chunk_size=64,
    )
    assert _canonical(outputs) == ref


def test_shm_identity_survives_rebalancing(dataset, pipe_reference):
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2,
        executor="process", transport=TRANSPORT_SHM, chunk_size=64,
        rebalance=True, rebalance_interval=256, slots_per_shard=4,
        rebalance_threshold=1.05,
    )
    assert _canonical(outputs) == pipe_reference(None)


def test_shm_identity_with_credit_window(dataset, pipe_reference):
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2,
        executor="process", transport=TRANSPORT_SHM, chunk_size=64,
        credit_window=1,
    )
    assert _canonical(outputs) == pipe_reference(None)


def test_oversized_frames_fall_back_to_the_pipe(dataset, pipe_reference):
    # A ring too small for any realistic batch frame: every bulky
    # message takes the pipe fallback; outputs must not change.
    outputs, _ = run_partitioned(
        dataset, _lossless_config(dataset), 2,
        executor="process", transport=TRANSPORT_SHM, chunk_size=64,
        ring_bytes=MIN_RING_BYTES,
    )
    assert _canonical(outputs) == pipe_reference(None)
