"""Unit tests for the Tuple-Productivity Profiler and Eq. 6 (repro.core.profiler)."""

import pytest

from repro import ProfileSnapshot, StreamTuple, TupleProductivityProfiler


def _t(delay):
    t = StreamTuple(ts=0, stream=0, seq=0)
    t.delay = delay
    return t


class TestRecording:
    def test_in_order_accumulates_by_coarse_delay(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 10, 2, True)
        p.record(_t(0), 20, 3, True)
        p.record(_t(15), 7, 1, True)  # bucket 2
        snapshot = p.peek_snapshot()
        assert snapshot.cumulative_cross(0) == 30
        assert snapshot.cumulative_on(0) == 5
        assert snapshot.cumulative_cross(2) == 37
        assert snapshot.cumulative_on(2) == 6

    def test_out_of_order_uses_interval_maxima(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 10, 4, True)
        p.record(_t(0), 30, 2, True)
        p.record(_t(25), None, None, False)  # estimated as max: cross 30, on 4
        snapshot = p.peek_snapshot()
        assert snapshot.cumulative_cross(3) - snapshot.cumulative_cross(2) == 30
        assert snapshot.cumulative_on(3) - snapshot.cumulative_on(2) == 4

    def test_out_of_order_prefers_previous_interval_maxima(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 100, 50, True)
        p.snapshot_and_reset()
        # New interval: current maxima are 0, previous are (100, 50).
        p.record(_t(5), None, None, False)
        snapshot = p.peek_snapshot()
        assert snapshot.cumulative_cross(1) == 100
        assert snapshot.cumulative_on(1) == 50

    def test_counts_tracked(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 1, 0, True)
        p.record(_t(5), None, None, False)
        assert p.in_order_recorded == 1
        assert p.out_of_order_recorded == 1

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            TupleProductivityProfiler(0)


class TestSnapshotReset:
    def test_reset_clears_maps(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 10, 5, True)
        first = p.snapshot_and_reset()
        assert first.total_cross == 10
        second = p.peek_snapshot()
        assert second.total_cross == 0

    def test_maxima_roll_over_one_interval(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 100, 50, True)
        p.snapshot_and_reset()
        p.snapshot_and_reset()
        # Two intervals later the old maxima are forgotten.
        p.record(_t(5), None, None, False)
        snapshot = p.peek_snapshot()
        assert snapshot.total_cross == 0.0


class TestSelectivityRatio:
    def test_eq6_hand_computed(self):
        # M×: {0: 100, 1: 100}; M^on: {0: 10, 1: 30}.
        # sel(K=0)/sel = (10/100) / (40/200) = 0.5
        snapshot = ProfileSnapshot({0: 100.0, 1: 100.0}, {0: 10.0, 1: 30.0})
        assert snapshot.sel_ratio(0) == pytest.approx(0.5)

    def test_ratio_at_maxdm_is_one(self):
        snapshot = ProfileSnapshot({0: 100.0, 1: 50.0}, {0: 10.0, 1: 45.0})
        assert snapshot.sel_ratio(1) == pytest.approx(1.0)
        assert snapshot.sel_ratio(99) == pytest.approx(1.0)

    def test_ratio_above_one_when_punctual_tuples_more_productive(self):
        # Early (low-delay) tuples have higher selectivity than late ones.
        snapshot = ProfileSnapshot({0: 100.0, 1: 100.0}, {0: 30.0, 1: 10.0})
        assert snapshot.sel_ratio(0) > 1.0

    def test_empty_maps_give_one(self):
        snapshot = ProfileSnapshot({}, {})
        assert snapshot.sel_ratio(0) == 1.0

    def test_zero_cross_at_k_gives_one(self):
        snapshot = ProfileSnapshot({5: 10.0}, {5: 2.0})
        assert snapshot.sel_ratio(0) == 1.0

    def test_negative_k_gives_zero_cumulatives(self):
        snapshot = ProfileSnapshot({0: 10.0}, {0: 5.0})
        assert snapshot.cumulative_cross(-1) == 0.0
        assert snapshot.cumulative_on(-1) == 0.0


class TestSmoothing:
    def test_zero_smoothing_is_last_interval_only(self):
        p = TupleProductivityProfiler(granularity_ms=10, smoothing=0.0)
        p.record(_t(0), 100, 10, True)
        p.snapshot_and_reset()
        p.record(_t(0), 50, 5, True)
        snapshot = p.snapshot_and_reset()
        assert snapshot.total_cross == 50  # first interval forgotten

    def test_smoothing_blends_intervals(self):
        p = TupleProductivityProfiler(granularity_ms=10, smoothing=0.5)
        p.record(_t(0), 100, 10, True)
        p.snapshot_and_reset()
        p.record(_t(0), 50, 5, True)
        snapshot = p.snapshot_and_reset()
        # 0.5 * 100 + 50 = 100 cross; 0.5 * 10 + 5 = 10 on.
        assert snapshot.total_cross == pytest.approx(100.0)
        assert snapshot.total_on == pytest.approx(10.0)

    def test_true_estimate_uses_raw_interval_despite_smoothing(self):
        p = TupleProductivityProfiler(granularity_ms=10, smoothing=0.9)
        p.record(_t(0), 100, 10, True)
        p.snapshot_and_reset()
        p.record(_t(0), 50, 5, True)
        snapshot = p.snapshot_and_reset()
        assert snapshot.true_result_estimate() == pytest.approx(5.0)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            TupleProductivityProfiler(10, smoothing=1.0)
        with pytest.raises(ValueError):
            TupleProductivityProfiler(10, smoothing=-0.1)

    def test_smoothed_ratio_resists_single_interval_spike(self):
        # Interval 1 establishes a flat DPcorr; interval 2 is a noisy
        # spike making punctual tuples look hyper-productive.  With
        # smoothing the ratio at low K stays near 1.
        p = TupleProductivityProfiler(granularity_ms=10, smoothing=0.5)
        for _ in range(10):
            p.record(_t(0), 100, 10, True)
            p.record(_t(15), 100, 10, True)
        p.snapshot_and_reset()
        p.record(_t(0), 10, 10, True)  # spike: selectivity 1.0 at delay 0
        p.record(_t(15), 100, 1, True)
        smoothed = p.snapshot_and_reset()
        raw = TupleProductivityProfiler(granularity_ms=10, smoothing=0.0)
        raw.record(_t(0), 10, 10, True)
        raw.record(_t(15), 100, 1, True)
        raw_snapshot = raw.snapshot_and_reset()
        assert smoothed.sel_ratio(0) < raw_snapshot.sel_ratio(0)


class TestNonEqSelCap:
    def test_cap_limits_ratio_to_one(self):
        from repro import NonEqSel

        snapshot = ProfileSnapshot({0: 100.0, 1: 100.0}, {0: 30.0, 1: 10.0})
        assert snapshot.sel_ratio(0) > 1.0
        capped = NonEqSel()
        assert capped.ratio(snapshot, 0) == 1.0

    def test_uncapped_returns_raw_eq6(self):
        from repro import NonEqSel

        snapshot = ProfileSnapshot({0: 100.0, 1: 100.0}, {0: 30.0, 1: 10.0})
        raw = NonEqSel(cap_at_one=False)
        assert raw.ratio(snapshot, 0) == pytest.approx(snapshot.sel_ratio(0))

    def test_ratios_below_one_unaffected_by_cap(self):
        from repro import NonEqSel

        snapshot = ProfileSnapshot({0: 100.0, 1: 100.0}, {0: 10.0, 1: 30.0})
        assert NonEqSel().ratio(snapshot, 0) == pytest.approx(0.5)


class TestTrueResultEstimate:
    def test_total_on_is_the_estimate(self):
        snapshot = ProfileSnapshot({0: 10.0, 2: 5.0}, {0: 3.0, 2: 4.0})
        assert snapshot.true_result_estimate() == pytest.approx(7.0)

    def test_includes_out_of_order_estimates(self):
        p = TupleProductivityProfiler(granularity_ms=10)
        p.record(_t(0), 10, 5, True)
        p.record(_t(25), None, None, False)  # adds estimated on=5
        assert p.peek_snapshot().true_result_estimate() == pytest.approx(10.0)

    def test_max_coarse_delay(self):
        snapshot = ProfileSnapshot({0: 1.0, 7: 1.0}, {})
        assert snapshot.max_coarse_delay == 7
