"""Tests for the NEXMark-style workload generator (repro.streams.nexmark).

The load-bearing properties: determinism under a fixed seed (including
across *fresh* interpreters — string hashing is seed-randomized per
process, so any hidden reliance on ``hash`` would break replays), the
phase semantics (burst multiplies rates, silence empties a stream, drift
moves the hot keys), and the two queries' partitioning contracts that
the soak harness and the partitioned engine rely on.
"""

import hashlib
import os
import subprocess
import sys
from collections import Counter

import pytest

from repro import (
    NexmarkConfig,
    PhaseSpec,
    auction_bid_query,
    auction_bids_workload,
    default_phases,
    make_auction_bids,
    make_person_auction_bid,
    person_auction_bid_query,
)
from repro.streams.nexmark import (
    max_stall_ms,
    peak_rates_per_ms,
    phase_boundaries_ms,
)


def small_config(**overrides):
    defaults = dict(
        num_bid_channels=2,
        num_phases=4,
        phase_duration_ms=2_000,
        seed=11,
        auction_domain=16,
        max_delay_ms=300,
    )
    defaults.update(overrides)
    return NexmarkConfig(**defaults)


def dataset_digest(dataset) -> str:
    """Stable fingerprint of every tuple's full identity and payload."""
    canonical = [
        (t.stream, t.seq, t.ts, t.arrival, sorted(t.values.items()))
        for t in dataset.arrivals()
    ]
    return hashlib.md5(repr(canonical).encode("utf-8")).hexdigest()


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        config = small_config()
        assert dataset_digest(make_auction_bids(config)) == dataset_digest(
            make_auction_bids(small_config())
        )
        assert dataset_digest(
            make_person_auction_bid(config)
        ) == dataset_digest(make_person_auction_bid(small_config()))

    def test_different_seed_different_dataset(self):
        assert dataset_digest(make_auction_bids(small_config())) != (
            dataset_digest(make_auction_bids(small_config(seed=12)))
        )

    def test_generator_deterministic_across_processes(self):
        # String hashing is seed-randomized per interpreter; dataset
        # generation must not be.  A fork()ed child inherits the parent
        # seed, so spawn *fresh* interpreters (same trick as
        # tests/test_rebalance.py) and require identical fingerprints.
        code = (
            "import hashlib\n"
            "from repro.streams.nexmark import NexmarkConfig, make_auction_bids\n"
            "config = NexmarkConfig(num_bid_channels=2, num_phases=4,\n"
            "                       phase_duration_ms=2000, seed=11,\n"
            "                       auction_domain=16, max_delay_ms=300)\n"
            "ds = make_auction_bids(config)\n"
            "canonical = [(t.stream, t.seq, t.ts, t.arrival,\n"
            "              sorted(t.values.items())) for t in ds.arrivals()]\n"
            "print(hashlib.md5(repr(canonical).encode('utf-8')).hexdigest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env.pop("PYTHONHASHSEED", None)
        digests = [
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert digests[0] == digests[1]
        assert digests[0] == dataset_digest(make_auction_bids(small_config()))


class TestPhaseSemantics:
    def phase_of(self, arrival, boundaries):
        for index, hi in enumerate(boundaries):
            if arrival <= hi:
                return index
        return len(boundaries) - 1

    def test_default_schedule_cycles_archetypes(self):
        phases = default_phases(5, 1_000, 3, 16)
        assert [p.name for p in phases] == [
            "steady", "burst", "silence", "drift", "steady"
        ]
        assert phases[1].rate == (1.0, 3.0, 3.0)
        assert 0.0 in phases[2].rate and phases[2].rate[0] == 1.0
        assert phases[3].hot_offset != 0 and phases[3].value_skew > 1.0

    def test_silence_phase_empties_the_silenced_stream(self):
        config = small_config()  # phase 2 silences bid channel 1
        dataset = make_auction_bids(config)
        boundaries = phase_boundaries_ms(config, 3)
        per_phase = Counter(
            (t.stream, self.phase_of(t.arrival, boundaries))
            for t in dataset.arrivals()
        )
        assert per_phase[(1, 2)] == 0  # silenced
        assert per_phase[(0, 2)] > 0 and per_phase[(2, 2)] > 0

    def test_burst_phase_multiplies_bid_rates(self):
        config = small_config()
        dataset = make_auction_bids(config)
        boundaries = phase_boundaries_ms(config, 3)
        per_phase = Counter(
            (t.stream, self.phase_of(t.arrival, boundaries))
            for t in dataset.arrivals()
        )
        steady, burst = per_phase[(1, 0)], per_phase[(1, 1)]
        assert burst >= 2.5 * steady  # BURST_MULTIPLIER = 3, gap rounding
        # The auction stream keeps its nominal rate through the burst.
        assert abs(per_phase[(0, 1)] - per_phase[(0, 0)]) <= 1

    def test_drift_phase_moves_the_hot_key(self):
        config = small_config()
        dataset = make_auction_bids(config)
        boundaries = phase_boundaries_ms(config, 3)

        def hot_key(phase):
            counts = Counter(
                t["auction"]
                for t in dataset.arrivals()
                if t.stream != 0
                and self.phase_of(t.arrival, boundaries) == phase
            )
            return counts.most_common(1)[0][0]

        # Rank 1 maps to the first domain value; drift rotates the
        # domain, so the hot auction id must change.
        assert hot_key(0) != hot_key(3)

    def test_arrival_order_and_stream_count(self):
        dataset = make_auction_bids(small_config())
        arrivals = [t.arrival for t in dataset.arrivals()]
        assert arrivals == sorted(arrivals)
        assert dataset.num_streams == 3
        assert dataset.max_delay() <= 300
        pab = make_person_auction_bid(small_config())
        assert pab.num_streams == 3
        attrs = [set(t.values) for t in pab.stream_tuples(1)[:1]]
        assert attrs == [{"auction", "seller"}]


class TestQueries:
    def test_auction_bid_query_is_exactly_partitionable(self):
        for channels in (1, 2, 3):
            attrs = auction_bid_query(channels).partition_attributes(
                1 + channels
            )
            assert attrs == {
                stream: "auction" for stream in range(1 + channels)
            }

    def test_person_auction_bid_query_is_broadcast(self):
        assert person_auction_bid_query().partition_attributes(3) is None


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NexmarkConfig(num_bid_channels=0)
        with pytest.raises(ValueError):
            NexmarkConfig(auction_domain=0)
        with pytest.raises(ValueError):
            NexmarkConfig(max_delay_ms=-1)
        with pytest.raises(ValueError):
            PhaseSpec("bad", duration_ms=0)
        with pytest.raises(ValueError):
            PhaseSpec("bad", duration_ms=10, rate=(-1.0,))

    def test_custom_phase_rate_arity_checked(self):
        config = small_config(
            phases=[PhaseSpec("p", 1_000, rate=(1.0, 1.0))]
        )
        with pytest.raises(ValueError, match="rate"):
            make_auction_bids(config)  # 3 streams, 2 multipliers


class TestWorkloadIntrospection:
    def test_boundaries_and_peaks(self):
        config = small_config()
        assert phase_boundaries_ms(config, 3) == [2_000, 4_000, 6_000, 8_000]
        peaks = peak_rates_per_ms(config, [40, 20, 20])
        assert peaks[0] == pytest.approx(1 / 40)
        assert peaks[1] == pytest.approx(3.0 / 20)  # burst phase dominates
        assert max_stall_ms(config, 3) == 2_000  # one silence phase

    def test_workload_caps_positive_and_rate_scaled(self):
        workload = auction_bids_workload(small_config(), window_s=0.5)
        caps = workload.analytic_caps(k_ms=300)
        assert caps.window_cap > 0 and caps.pending_cap > 0
        bigger = workload.analytic_caps(k_ms=3_000)
        assert bigger.window_cap > caps.window_cap
        assert bigger.pending_cap > caps.pending_cap
