"""Unit tests for sliding windows with hash indexes (repro.join.window)."""

import pytest

from repro import SlidingWindow, StreamTuple


def _t(ts, **values):
    return StreamTuple(ts=ts, values=values, stream=0, seq=ts)


class TestBasics:
    def test_insert_and_len(self):
        w = SlidingWindow(1000)
        w.insert(_t(1))
        w.insert(_t(2))
        assert len(w) == 2
        assert w.cardinality == 2

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_tuples_iterates_live_content(self):
        w = SlidingWindow(1000)
        for ts in (5, 3, 9):
            w.insert(_t(ts))
        assert sorted(t.ts for t in w.tuples()) == [3, 5, 9]

    def test_clear(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1, v=1))
        w.clear()
        assert len(w) == 0
        assert list(w.lookup("v", 1)) == []


class TestExpiration:
    def test_expire_removes_strictly_older(self):
        w = SlidingWindow(1000)
        for ts in (10, 20, 30):
            w.insert(_t(ts))
        removed = w.expire_before(20)
        assert removed == 1
        assert w.timestamps() == [20, 30]

    def test_expire_with_out_of_order_inserts(self):
        w = SlidingWindow(1000)
        for ts in (30, 10, 20, 5):
            w.insert(_t(ts))
        assert w.expire_before(15) == 2  # 10 and 5
        assert w.timestamps() == [20, 30]

    def test_expire_everything(self):
        w = SlidingWindow(1000)
        for ts in (1, 2, 3):
            w.insert(_t(ts))
        assert w.expire_before(100) == 3
        assert len(w) == 0

    def test_expire_noop_when_all_fresh(self):
        w = SlidingWindow(1000)
        w.insert(_t(50))
        assert w.expire_before(10) == 0
        assert len(w) == 1

    def test_min_ts(self):
        w = SlidingWindow(1000)
        assert w.min_ts() is None
        for ts in (7, 3, 9):
            w.insert(_t(ts))
        assert w.min_ts() == 3
        w.expire_before(5)
        assert w.min_ts() == 7


class TestIndexes:
    def test_lookup_finds_matches(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1, v="x"))
        w.insert(_t(2, v="y"))
        w.insert(_t(3, v="x"))
        assert sorted(t.ts for t in w.lookup("v", "x")) == [1, 3]
        assert [t.ts for t in w.lookup("v", "y")] == [2]

    def test_lookup_returns_insertion_order(self):
        # Determinism regression: candidates must come back in sorted
        # slot-id (= insertion) order, not Set iteration order, so the
        # result sequence of a probe is reproducible across runs.
        w = SlidingWindow(10_000, indexed_attributes=["v"])
        timestamps = [907, 12, 455, 3001, 88, 2999, 640, 5, 1717]
        for ts in timestamps:
            w.insert(_t(ts, v="k"))
        assert [t.ts for t in w.lookup("v", "k")] == timestamps
        # Removals must not perturb the order of the survivors.
        w.expire_before(100)
        survivors = [ts for ts in timestamps if ts >= 100]
        assert [t.ts for t in w.lookup("v", "k")] == survivors

    def test_lookup_missing_value_empty(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1, v="x"))
        assert list(w.lookup("v", "zzz")) == []

    def test_lookup_unindexed_attribute_raises(self):
        w = SlidingWindow(1000)
        with pytest.raises(KeyError):
            w.lookup("v", 1)

    def test_has_index(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        assert w.has_index("v")
        assert not w.has_index("w")

    def test_expiration_updates_indexes(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1, v="x"))
        w.insert(_t(50, v="x"))
        w.expire_before(10)
        assert [t.ts for t in w.lookup("v", "x")] == [50]

    def test_multiple_indexes(self):
        w = SlidingWindow(1000, indexed_attributes=["a", "b"])
        w.insert(_t(1, a=1, b="p"))
        w.insert(_t(2, a=1, b="q"))
        assert len(list(w.lookup("a", 1))) == 2
        assert len(list(w.lookup("b", "q"))) == 1

    def test_index_handles_missing_attribute_as_none(self):
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1))  # no "v" attribute
        assert [t.ts for t in w.lookup("v", None)] == [1]

    def test_lookup_is_lazy_over_the_bucket(self):
        # The probe hot path must not pay a per-lookup list copy: lookup
        # returns a single-pass iterable over the live bucket.
        w = SlidingWindow(1000, indexed_attributes=["v"])
        w.insert(_t(1, v="x"))
        w.insert(_t(2, v="x"))
        candidates = w.lookup("v", "x")
        assert not isinstance(candidates, list)
        assert [t.ts for t in candidates] == [1, 2]
