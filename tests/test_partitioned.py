"""Tests for the hash-partitioned parallel pipeline (repro.parallel).

The load-bearing property is *shard-count invariance*: for equi-join
workloads, the partitioned engine's result multiset equals the single
:class:`QualityDrivenPipeline`'s for any shard count, as long as disorder
handling is lossless (fixed K covering the max delay, or in-order input).
"""

from collections import Counter

import pytest

from repro import (
    BandPredicate,
    EquiPredicate,
    FixedKPolicy,
    JoinCondition,
    KeyRouter,
    MultiprocessingExecutor,
    PartitionedPipeline,
    PipelineConfig,
    PipelineMetrics,
    QualityDrivenPipeline,
    SerialExecutor,
    StreamTuple,
    ThetaPredicate,
    equi_join_chain,
    from_tuple_specs,
    make_d3_syn,
    run_partitioned,
    seconds,
    star_equi_join,
)
from repro.parallel.router import stable_hash


def _d3(duration_s=15, seed=11):
    return make_d3_syn(
        duration_ms=seconds(duration_s), seed=seed, inter_arrival_ms=50
    )


def _lossless_config(dataset, condition, num_streams, collect=True):
    """Fixed K >= realized max delay: disorder handling drops nothing."""
    k = dataset.max_delay()
    return PipelineConfig(
        window_sizes_ms=[seconds(2)] * num_streams,
        condition=condition,
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
        collect_results=collect,
    )


def _single_run(dataset, config):
    pipeline = QualityDrivenPipeline(config)
    results = []
    for t in dataset.arrivals():
        results.extend(pipeline.process(t))
    results.extend(pipeline.flush())
    return results


def _multiset(results):
    return Counter(r.key() for r in results)


class TestPartitionKeyExtraction:
    def test_chain_equi_join_is_partitionable(self):
        condition = equi_join_chain("a1", 3)
        assert condition.partition_attributes(3) == {0: "a1", 1: "a1", 2: "a1"}

    def test_transitive_closure_across_attributes(self):
        # S0.x == S1.y and S1.y == S2.z: one equality class covers all.
        condition = JoinCondition(
            [EquiPredicate(0, "x", 1, "y"), EquiPredicate(1, "y", 2, "z")]
        )
        assert condition.partition_attributes(3) == {0: "x", 1: "y", 2: "z"}

    def test_star_join_on_distinct_attributes_is_not(self):
        condition = star_equi_join(0, {1: "a1", 2: "a2", 3: "a3"})
        assert condition.partition_attributes(4) is None

    def test_cross_join_and_theta_are_not(self):
        assert JoinCondition([]).partition_attributes(2) is None
        theta = JoinCondition(
            [ThetaPredicate((0, 1), lambda a, b: True, name="t")]
        )
        assert theta.partition_attributes(2) is None
        band = JoinCondition([BandPredicate(0, "v", 1, "v", 5.0)])
        assert band.partition_attributes(2) is None

    def test_key_covering_component_beats_partial_components(self):
        # A non-covering equality class (streams 0-1 on "u") must not
        # shadow the covering one (all streams on "a").
        condition = JoinCondition(
            [
                EquiPredicate(0, "u", 1, "u"),
                EquiPredicate(0, "a", 1, "a"),
                EquiPredicate(1, "a", 2, "a"),
            ]
        )
        assert condition.partition_attributes(3) == {0: "a", 1: "a", 2: "a"}


class TestKeyRouter:
    def test_exact_routing_sends_matching_tuples_together(self):
        router = KeyRouter(equi_join_chain("a1", 2), 2, 4)
        assert router.exact
        for value in range(50):
            shards = {
                router.route(StreamTuple(ts=1, values={"a1": value}, stream=s))
                for s in (0, 1)
            }
            assert len(shards) == 1  # both streams land on the same shard
            assert len(shards.pop()) == 1  # exactly one shard each

    def test_broadcast_fallback_routes_to_all_shards(self):
        router = KeyRouter(JoinCondition([]), 2, 3)
        assert not router.exact
        assert router.route(StreamTuple(ts=1, stream=0)) == (0, 1, 2)
        assert router.shard_of(StreamTuple(ts=1, stream=0)) is None

    def test_stable_hash_is_equality_consistent(self):
        # Values that compare equal under == must land on the same shard.
        from decimal import Decimal
        from fractions import Fraction

        assert stable_hash(7) == stable_hash(7.0)
        assert stable_hash(True) == stable_hash(1)
        assert stable_hash(7) == stable_hash(Decimal(7))
        assert stable_hash(2.5) == stable_hash(Fraction(5, 2))
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(None) == stable_hash(None)
        # Composite (tuple) keys recurse element-wise.
        assert stable_hash((1, 2)) == stable_hash((1.0, Decimal(2)))
        assert stable_hash((1, ("x", 2))) == stable_hash((1, ("x", 2.0)))
        assert stable_hash((1, 2)) != stable_hash((2, 1))
        # Frozensets combine commutatively (repr order is not canonical).
        assert stable_hash(frozenset((1, 9))) == stable_hash(frozenset((9, 1.0)))

    def test_single_shard_router(self):
        router = KeyRouter(equi_join_chain("a1", 2), 2, 1)
        assert router.route(StreamTuple(ts=1, values={"a1": 3}, stream=0)) == (0,)


class TestShardCountInvariance:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_serial_executor_matches_single_pipeline(self, shards):
        dataset = _d3()
        condition = equi_join_chain("a1", 3)
        baseline = _multiset(
            _single_run(dataset, _lossless_config(dataset, condition, 3))
        )
        outputs, metrics = run_partitioned(
            dataset, _lossless_config(dataset, condition, 3), shards
        )
        assert _multiset(outputs) == baseline
        assert metrics.tuples_processed == len(dataset)
        assert metrics.results_produced == len(outputs)

    def test_process_executor_matches_single_pipeline(self):
        dataset = _d3(duration_s=10, seed=13)
        condition = equi_join_chain("a1", 3)
        baseline = _multiset(
            _single_run(dataset, _lossless_config(dataset, condition, 3))
        )
        outputs, metrics = run_partitioned(
            dataset,
            _lossless_config(dataset, condition, 3),
            2,
            executor="process",
            batch_size=64,
        )
        assert _multiset(outputs) == baseline
        assert metrics.tuples_processed == len(dataset)

    def test_count_only_mode_matches(self):
        dataset = _d3(duration_s=10, seed=17)
        condition = equi_join_chain("a1", 3)
        baseline = len(
            _single_run(dataset, _lossless_config(dataset, condition, 3))
        )
        for shards in (1, 3):
            count, _ = run_partitioned(
                dataset,
                _lossless_config(dataset, condition, 3, collect=False),
                shards,
            )
            assert count == baseline

    def test_broadcast_condition_preserves_result_multiset(self):
        # Band join is not partitionable: broadcast + shard-0 emission
        # must still yield the exact single-pipeline multiset.
        specs = [(i % 2, 100 * i, {"a1": i % 7}) for i in range(60)]
        dataset = from_tuple_specs(specs, num_streams=2)
        condition = JoinCondition([BandPredicate(0, "a1", 1, "a1", 1.0)])
        config = _lossless_config(dataset, condition, 2)
        baseline = _multiset(_single_run(dataset, config))
        outputs, _ = run_partitioned(dataset, config, 3)
        assert baseline  # fixture actually joins
        assert _multiset(outputs) == baseline

    def test_flush_returns_timestamp_ordered_results(self):
        dataset = _d3(duration_s=8, seed=23)
        condition = equi_join_chain("a1", 3)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 3), 4
        )
        for t in dataset.arrivals():
            pipeline.process(t)
        final = pipeline.flush()
        assert [r.ts for r in final] == sorted(r.ts for r in final)


class TestPartitionedLifecycle:
    def test_process_after_flush_raises(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 2), 2
        )
        assert not pipeline.flushed
        pipeline.flush()
        assert pipeline.flushed
        assert pipeline.flush() == []  # idempotent
        with pytest.raises(RuntimeError):
            pipeline.process(StreamTuple(ts=1, values={"a1": 1}, stream=0))

    def test_metrics_live_under_serial_executor(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 2), 2
        )
        pipeline.process(StreamTuple(ts=1, values={"a1": 1}, stream=0))
        assert pipeline.metrics.tuples_processed == 1

    def test_metrics_deferred_under_process_executor(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 2), 2, executor="process"
        )
        with pytest.raises(RuntimeError):
            pipeline.metrics
        pipeline.flush()
        assert pipeline.metrics.tuples_processed == 0

    def test_unknown_executor_rejected(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        with pytest.raises(ValueError):
            PartitionedPipeline(
                _lossless_config(dataset, condition, 2), 2, executor="threads"
            )

    def test_executor_factory_accepted(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 2),
            2,
            executor=lambda config, shards: SerialExecutor(config, shards),
        )
        assert isinstance(pipeline.executor, SerialExecutor)

    def test_close_without_flush_terminates_workers(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, condition, 2), 2, executor="process"
        )
        pipeline.process(StreamTuple(ts=1, values={"a1": 1}, stream=0))
        workers = pipeline.executor._processes
        pipeline.close()
        assert all(not worker.is_alive() for worker in workers)
        with pytest.raises(RuntimeError):
            pipeline.process(StreamTuple(ts=2, values={"a1": 1}, stream=0))
        assert pipeline.flush() == []

    def test_context_manager_closes_on_error(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        with pytest.raises(KeyError):
            with PartitionedPipeline(
                _lossless_config(dataset, condition, 2), 2, executor="process"
            ) as pipeline:
                workers = pipeline.executor._processes
                raise KeyError("feed loop blew up")
        assert all(not worker.is_alive() for worker in workers)

    def test_close_after_flush_is_clean(self):
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        with PartitionedPipeline(
            _lossless_config(dataset, condition, 2), 2, executor="process"
        ) as pipeline:
            pipeline.flush()
        assert pipeline.flushed

    def test_worker_failure_surfaces(self):
        # A tuple with an out-of-range stream index makes the shard
        # pipeline raise inside the worker; finish() must report it.
        condition = equi_join_chain("a1", 2)
        dataset = _d3(duration_s=2)
        executor = MultiprocessingExecutor(
            _lossless_config(dataset, condition, 2), 1, batch_size=1
        )
        executor.submit(0, StreamTuple(ts=1, values={"a1": 1}, stream=5))
        with pytest.raises(RuntimeError, match="shard 0"):
            executor.finish()


class TestMetricsMerge:
    def test_merge_aggregates_counters(self):
        a = PipelineMetrics(
            k_history=[(0, 0), (100, 50)],
            adaptation_seconds=[0.1],
            adaptations=1,
            results_produced=3,
            tuples_processed=10,
            latency_sum_ms=30,
            latency_count=3,
            latency_max_ms=20,
        )
        b = PipelineMetrics(
            k_history=[(0, 0), (50, 80)],
            adaptation_seconds=[0.2, 0.3],
            adaptations=2,
            results_produced=5,
            tuples_processed=12,
            latency_sum_ms=50,
            latency_count=4,
            latency_max_ms=35,
        )
        merged = PipelineMetrics.merge([a, b])
        assert merged.tuples_processed == 22
        assert merged.results_produced == 8
        assert merged.adaptations == 3
        assert merged.latency_sum_ms == 80
        assert merged.latency_count == 7
        assert merged.latency_max_ms == 35
        assert merged.adaptation_seconds == [0.1, 0.2, 0.3]
        # Both shards' initial (0, 0) epochs collapse to one entry; the
        # individual trajectories survive in shard_k_histories.
        assert merged.k_history == [(0, 0), (50, 80), (100, 50)]
        assert merged.shard_k_histories == [
            [(0, 0), (100, 50)],
            [(0, 0), (50, 80)],
        ]
        assert merged.average_latency_ms() == pytest.approx(80 / 7)

    def test_merged_average_k_is_mean_of_shard_averages(self):
        # Hand-computed over a run ending at t=200:
        #   shard a: K=0 on [0,100), K=50 on [100,200)  -> avg 25
        #   shard b: K=0 on [0,50),  K=80 on [50,200)   -> avg 60
        # The merged average must be the mean of the shard averages
        # (shards buffer concurrently), not the time-weighted average of
        # the interleaved event union (which would give 45 here).
        a = PipelineMetrics(k_history=[(0, 0), (100, 50)])
        b = PipelineMetrics(k_history=[(0, 0), (50, 80)])
        assert a.average_k_ms(200) == pytest.approx(25.0)
        assert b.average_k_ms(200) == pytest.approx(60.0)
        merged = PipelineMetrics.merge([a, b])
        assert merged.average_k_ms(200) == pytest.approx((25.0 + 60.0) / 2)

    def test_nested_merge_flattens_to_leaf_shard_trajectories(self):
        # Merging already-merged metrics must average over the leaf
        # shards, not over each part's interleaved event union.
        a = PipelineMetrics(k_history=[(0, 0), (100, 50)])   # avg(200) = 25
        b = PipelineMetrics(k_history=[(0, 0), (50, 80)])    # avg(200) = 60
        c = PipelineMetrics(k_history=[(0, 40)])             # avg(200) = 40
        nested = PipelineMetrics.merge([PipelineMetrics.merge([a, b]), c])
        flat = PipelineMetrics.merge([a, b, c])
        assert nested.shard_k_histories == flat.shard_k_histories
        assert nested.average_k_ms(200) == pytest.approx((25 + 60 + 40) / 3)

    def test_merge_collapses_nonadjacent_duplicate_epochs(self):
        # Shards with differing initial K: the ts-sorted union interleaves
        # the duplicates, which must still collapse to one entry each.
        parts = [
            PipelineMetrics(k_history=[(0, 0), (100, 50)]),
            PipelineMetrics(k_history=[(0, 5)]),
            PipelineMetrics(k_history=[(0, 0)]),
        ]
        merged = PipelineMetrics.merge(parts)
        assert merged.k_history == [(0, 0), (0, 5), (100, 50)]

    def test_merge_keeps_concurrent_equal_k_changes(self):
        # Only the *initial* epochs dedupe: two shards adapting to the
        # same K at the same (shared) boundary are distinct real events
        # that K-change counts over the merged history must still see.
        parts = [
            PipelineMetrics(k_history=[(0, 0), (5_000, 250)]),
            PipelineMetrics(k_history=[(0, 0), (5_000, 250)]),
        ]
        merged = PipelineMetrics.merge(parts)
        assert merged.k_history == [(0, 0), (5_000, 250), (5_000, 250)]

    def test_merge_of_identical_fixed_k_shards_keeps_fixed_k_average(self):
        # N shards pinned at the same fixed K: before the fix the N
        # duplicated (0, K) epochs were harmless but any zero-duration
        # reading of the union skewed averages; now the merged view is
        # exactly the single-shard view.
        parts = [PipelineMetrics(k_history=[(0, 300)]) for _ in range(4)]
        merged = PipelineMetrics.merge(parts)
        assert merged.k_history == [(0, 300)]
        assert merged.average_k_ms(1_000) == pytest.approx(300.0)

    def test_merge_empty(self):
        merged = PipelineMetrics.merge([])
        assert merged.tuples_processed == 0
        assert merged.average_k_ms() == 0.0


class TestDeterminism:
    def test_two_identical_seeded_runs_produce_identical_sequences(self):
        # Regression for the SlidingWindow.lookup set-iteration bug: the
        # emitted result *sequence* (not just set) must be reproducible.
        condition = equi_join_chain("a1", 3)
        sequences = []
        for _ in range(2):
            dataset = _d3(duration_s=10, seed=29)
            results = _single_run(
                dataset, _lossless_config(dataset, condition, 3)
            )
            sequences.append([r.key() for r in results])
        assert sequences[0] == sequences[1]

    def test_partitioned_serial_runs_are_deterministic(self):
        condition = equi_join_chain("a1", 3)
        sequences = []
        for _ in range(2):
            dataset = _d3(duration_s=8, seed=31)
            outputs, _ = run_partitioned(
                dataset, _lossless_config(dataset, condition, 3), 4
            )
            sequences.append([r.key() for r in outputs])
        assert sequences[0] == sequences[1]
