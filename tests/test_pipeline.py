"""Unit and integration tests for the end-to-end pipeline (repro.core.pipeline)."""

import pytest

from repro import (
    EquiPredicate,
    FixedKPolicy,
    JoinCondition,
    MaxKSlackPolicy,
    ModelBasedPolicy,
    NoKSlackPolicy,
    NonEqSel,
    PipelineConfig,
    QualityDrivenPipeline,
    StreamTuple,
    from_tuple_specs,
)


def _equi_config(**overrides):
    kwargs = dict(
        window_sizes_ms=[1_000, 1_000],
        condition=JoinCondition([EquiPredicate(0, "v", 1, "v")]),
        gamma=0.9,
        period_ms=10_000,
        interval_ms=1_000,
        basic_window_ms=10,
        granularity_ms=10,
    )
    kwargs.update(overrides)
    return PipelineConfig(**kwargs)


def _run(pipeline, specs):
    """Feed (stream, ts, values) specs in arrival order; return all results."""
    ds = from_tuple_specs(specs, num_streams=pipeline.num_streams)
    results = []
    for t in ds.arrivals():
        results.extend(pipeline.process(t))
    results.extend(pipeline.flush())
    return results


class TestConfigValidation:
    def test_gamma_bounds(self):
        with pytest.raises(ValueError):
            _equi_config(gamma=0.0)
        with pytest.raises(ValueError):
            _equi_config(gamma=1.5)

    def test_interval_must_not_exceed_period(self):
        with pytest.raises(ValueError):
            _equi_config(interval_ms=20_000, period_ms=10_000)

    def test_positive_b_and_g(self):
        with pytest.raises(ValueError):
            _equi_config(basic_window_ms=0)
        with pytest.raises(ValueError):
            _equi_config(granularity_ms=0)


class TestEndToEndJoin:
    def test_in_order_streams_full_results(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        results = _run(
            pipeline,
            [
                (0, 100, {"v": 1}),
                (1, 150, {"v": 1}),
                (0, 300, {"v": 2}),
                (1, 350, {"v": 2}),
            ],
        )
        assert len(results) == 2

    def test_disorder_without_kslack_loses_results(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        # The matching S0 tuple arrives very late (delay > window).
        results = _run(
            pipeline,
            [
                (0, 5_000, {"v": 9}),
                (1, 5_100, {"v": 9}),
                (1, 8_000, {"v": 1}),
                (0, 6_500, {"v": 1}),   # late: onT is 8000, outside W=1000
            ],
        )
        assert len(results) == 1  # only the (9, 9) match

    def test_fixed_k_recovers_late_results(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=FixedKPolicy(2_000), initial_k_ms=2_000)
        )
        results = _run(
            pipeline,
            [
                (0, 5_000, {"v": 9}),
                (1, 5_100, {"v": 9}),
                (1, 8_000, {"v": 1}),
                (0, 7_500, {"v": 1}),   # delay 500 <= K
                (0, 11_000, {"v": 3}),  # advances time so buffers drain
                (1, 11_050, {"v": 3}),
            ],
        )
        assert len(results) == 3

    def test_flush_produces_buffered_results(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=FixedKPolicy(100_000), initial_k_ms=100_000)
        )
        # Everything stays buffered until flush.
        results = _run(
            pipeline,
            [(0, 100, {"v": 1}), (1, 150, {"v": 1})],
        )
        assert len(results) == 1

    def test_flush_is_terminal(self):
        pipeline = QualityDrivenPipeline(_equi_config())
        pipeline.flush()
        with pytest.raises(RuntimeError):
            pipeline.process(StreamTuple(ts=1, stream=0, seq=0, arrival=1))

    def test_double_flush_returns_empty(self):
        pipeline = QualityDrivenPipeline(_equi_config())
        pipeline.flush()
        assert pipeline.flush() == []

    def test_count_only_mode_counts(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(collect_results=False, policy=NoKSlackPolicy())
        )
        total = 0
        ds = from_tuple_specs(
            [(0, 100, {"v": 1}), (1, 150, {"v": 1})], num_streams=2
        )
        for t in ds.arrivals():
            total += pipeline.process(t)
        total += pipeline.flush()
        assert total == 1
        assert pipeline.metrics.results_produced == 1


class TestAdaptationScheduling:
    def test_adaptation_every_interval(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=NoKSlackPolicy()))
        specs = [(0, ts, {"v": 1}) for ts in range(0, 5_500, 500)]
        _run(pipeline, specs)
        # App time reached 5000 → adaptations at 1000..5000.
        assert pipeline.metrics.adaptations == 5

    def test_adaptation_callback_fires_before_step(self):
        seen = []
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=NoKSlackPolicy()),
            on_adaptation=lambda p, boundary: seen.append(boundary),
        )
        _run(pipeline, [(0, ts, {"v": 1}) for ts in range(0, 3_500, 500)])
        assert seen == [1_000, 2_000, 3_000]

    def test_k_history_records_changes(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=FixedKPolicy(300), initial_k_ms=0)
        )
        _run(pipeline, [(0, ts, {"v": 1}) for ts in range(0, 2_500, 500)])
        ks = [k for _, k in pipeline.metrics.k_history]
        assert ks[0] == 0
        assert 300 in ks

    def test_max_k_slack_updates_immediately(self):
        pipeline = QualityDrivenPipeline(_equi_config(policy=MaxKSlackPolicy()))
        ds = from_tuple_specs(
            [(0, 1_000, {"v": 1}), (0, 400, {"v": 1})], num_streams=2
        )
        for t in ds.arrivals():
            pipeline.process(t)
        assert pipeline.current_k_ms == 600

    def test_adaptation_times_recorded(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=ModelBasedPolicy(NonEqSel()))
        )
        _run(pipeline, [(0, ts, {"v": 1}) for ts in range(0, 3_500, 500)])
        assert len(pipeline.metrics.adaptation_seconds) == pipeline.metrics.adaptations
        assert all(t >= 0 for t in pipeline.metrics.adaptation_seconds)

    def test_on_results_callback(self):
        produced = []
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=NoKSlackPolicy()),
            on_results=lambda ts, count: produced.append((ts, count)),
        )
        _run(pipeline, [(0, 100, {"v": 1}), (1, 150, {"v": 1})])
        assert produced == [(150, 1)]


class TestMetrics:
    def test_average_k_time_weighted(self):
        from repro.core.pipeline import PipelineMetrics

        metrics = PipelineMetrics()
        metrics.k_history = [(0, 0), (1_000, 100)]
        # 0 for 1s, 100 for 1s → average 50 over 2s.
        assert metrics.average_k_ms(2_000) == pytest.approx(50.0)

    def test_average_k_empty_history(self):
        from repro.core.pipeline import PipelineMetrics

        assert PipelineMetrics().average_k_ms(1_000) == 0.0

    def test_latency_accounting(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=FixedKPolicy(1_000), initial_k_ms=1_000)
        )
        _run(pipeline, [(0, ts, {"v": 1}) for ts in range(0, 4_000, 500)])
        assert pipeline.metrics.latency_count > 0
        assert pipeline.metrics.average_latency_ms() >= 0.0


class TestModelBasedEndToEnd:
    def test_adapts_k_to_nonzero_under_disorder(self):
        pipeline = QualityDrivenPipeline(
            _equi_config(policy=ModelBasedPolicy(NonEqSel()), gamma=0.99)
        )
        # Every 4th tuple of each stream is delayed by ~600 ms.
        specs = []
        for position, ts in enumerate(range(0, 20_000, 100)):
            effective = ts - 600 if position % 4 == 3 else ts
            specs.append((position % 2, max(0, effective), {"v": 1}))
        _run(pipeline, specs)
        ks = [k for _, k in pipeline.metrics.k_history]
        assert max(ks) > 0
