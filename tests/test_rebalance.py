"""Tests for skew-aware slot routing and live shard rebalancing.

The load-bearing property is *routing transparency*: with lossless
disorder handling (fixed K covering the realized max delay), enabling
rebalancing — including actual mid-run state migrations — changes
neither the canonical merged result sequence nor the summed
``JoinStatistics`` at any shard count.  Rebalancing is a pure
performance knob (ISSUE 4 acceptance criterion), proven here at
shards 1/2/4 under the serial executor and under the process executor
on both transports.
"""

import os
import random
import subprocess
import sys

import pytest

from repro import (
    FixedKPolicy,
    JoinCondition,
    KeyRouter,
    MigrationSpec,
    KSlackBuffer,
    PartitionedPipeline,
    PipelineConfig,
    QualityDrivenPipeline,
    Rebalancer,
    SerialExecutor,
    ShardExecutor,
    StateBlock,
    StreamTuple,
    Synchronizer,
    SlidingWindow,
    TRANSPORT_BLOCKS,
    TRANSPORT_OBJECTS,
    ZipfValueSampler,
    equi_join_chain,
    from_tuple_specs,
    run_partitioned,
    seconds,
)
from repro.core.blocks import decode_state, encode_state
from repro.parallel.router import stable_hash
from repro.parallel.shard import slot_classifier


def skewed_dataset(num_tuples=3_000, z=1.2, domain=64, seed=5, max_delay=400):
    """Three interleaved streams whose join key is Zipf(z)-distributed."""
    rng = random.Random(seed)
    sampler = ZipfValueSampler(list(range(1, domain + 1)), z, rng)
    events = []
    for i in range(num_tuples):
        delay = 0 if rng.random() < 0.8 else rng.randint(1, max_delay)
        events.append((i % 3, i * 15, delay, sampler.sample()))
    order = sorted(
        range(num_tuples), key=lambda i: (events[i][1] + events[i][2], i)
    )
    specs = [(events[i][0], events[i][1], {"a1": events[i][3]}) for i in order]
    return from_tuple_specs(specs, num_streams=3, name=f"zipf-{z}")


def _lossless_config(dataset, collect=True):
    k = dataset.max_delay()
    return PipelineConfig(
        window_sizes_ms=[seconds(1)] * 3,
        condition=equi_join_chain("a1", 3),
        gamma=0.95,
        period_ms=seconds(10),
        interval_ms=seconds(1),
        policy=FixedKPolicy(k),
        initial_k_ms=k,
        collect_results=collect,
    )


def _canonical(results):
    return [(r.ts, r.key()) for r in sorted(results, key=lambda r: (r.ts, r.key()))]


def _drive(dataset, config, shards, rebalance, **kwargs):
    """Feed per-tuple, flush; return (canonical seq, stats, pipeline)."""
    pipeline = PartitionedPipeline(
        config, shards, rebalance=rebalance, **kwargs
    )
    outputs = []
    with pipeline:
        for t in dataset.arrivals():
            outputs.extend(pipeline.process(t))
        outputs.extend(pipeline.flush())
        stats = pipeline.join_statistics()
        metrics = pipeline.metrics
    return _canonical(outputs), stats, metrics, pipeline


# ----------------------------------------------------------------------
# the tentpole property: rebalancing is invisible in the results
# ----------------------------------------------------------------------


class TestRebalancingTransparency:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sequence_and_stats_identical_to_static_routing(self, shards):
        dataset = skewed_dataset()
        static_seq, static_stats, static_m, _ = _drive(
            dataset, _lossless_config(dataset), shards, rebalance=False
        )
        adaptive_seq, adaptive_stats, adaptive_m, pipeline = _drive(
            dataset,
            _lossless_config(dataset),
            shards,
            rebalance=True,
            rebalance_interval=512,
            rebalance_threshold=1.05,
        )
        if shards > 1:
            # Not vacuous: state really migrated mid-run.
            assert pipeline.rebalances > 0
            assert pipeline.slots_moved > 0
        assert adaptive_seq == static_seq
        assert adaptive_stats == static_stats
        assert adaptive_m.tuples_processed == len(dataset)
        assert static_m.tuples_processed == len(dataset)
        assert adaptive_m.results_produced == static_m.results_produced

    @pytest.mark.parametrize("transport", [TRANSPORT_BLOCKS, TRANSPORT_OBJECTS])
    def test_process_executor_migrates_identically(self, transport):
        dataset = skewed_dataset(num_tuples=2_500)
        config = _lossless_config(dataset)
        static_seq, static_stats, _, _ = _drive(
            dataset, config, 2, rebalance=False,
            executor="process", transport=transport, batch_size=128,
        )
        adaptive_seq, adaptive_stats, _, pipeline = _drive(
            dataset,
            _lossless_config(dataset),
            2,
            rebalance=True,
            rebalance_interval=512,
            rebalance_threshold=1.05,
            executor="process",
            transport=transport,
            batch_size=128,
        )
        assert pipeline.rebalances > 0
        assert adaptive_seq == static_seq
        assert adaptive_stats == static_stats

    def test_batched_driver_matches_per_tuple_with_rebalancing(self):
        dataset = skewed_dataset(num_tuples=2_500)
        per_tuple, _, _, _ = _drive(
            dataset,
            _lossless_config(dataset),
            4,
            rebalance=True,
            rebalance_interval=512,
            rebalance_threshold=1.05,
        )
        outputs, _ = run_partitioned(
            dataset,
            _lossless_config(dataset),
            4,
            chunk_size=256,
            rebalance=True,
            rebalance_interval=512,
        )
        assert _canonical(outputs) == per_tuple

    def test_count_only_mode_counts_match(self):
        dataset = skewed_dataset(num_tuples=2_500)
        static_count, _ = run_partitioned(
            dataset, _lossless_config(dataset, collect=False), 4
        )
        adaptive_count, _ = run_partitioned(
            dataset,
            _lossless_config(dataset, collect=False),
            4,
            rebalance=True,
            rebalance_interval=512,
        )
        assert adaptive_count == static_count

    @pytest.mark.parametrize("shards", [2, 4])
    def test_cross_stream_timestamp_lag_stays_identical(self, shards):
        # Stream 1 trails stream 0 by 200 ms in timestamp while both are
        # internally in order, so the per-stream realized delay — and
        # thus the "lossless" fixed K — is 0, and only the
        # synchronizer's completeness gate keeps the static run exact.
        # The migration barrier must not outrun that gate: its forced
        # drain is floored at beacon - max observed arrival lag
        # (regression for exactly this scenario).
        rng = random.Random(3)
        sampler = ZipfValueSampler(list(range(1, 33)), 1.2, rng)
        specs = []
        for i in range(2_000):
            ts = 300 + i * 20
            specs.append((0, ts, {"a1": sampler.sample()}))
            specs.append((1, ts - 200, {"a1": sampler.sample()}))
        dataset = from_tuple_specs(specs, num_streams=2)
        assert dataset.max_delay() == 0  # in order per stream
        config = lambda: PipelineConfig(  # noqa: E731
            window_sizes_ms=[seconds(1)] * 2,
            condition=equi_join_chain("a1", 2),
            policy=FixedKPolicy(0),
            initial_k_ms=0,
        )
        static_seq, static_stats, _, _ = _drive(
            dataset, config(), shards, rebalance=False
        )
        adaptive_seq, adaptive_stats, _, pipeline = _drive(
            dataset,
            config(),
            shards,
            rebalance=True,
            rebalance_interval=256,
            rebalance_threshold=1.05,
        )
        assert pipeline.rebalances > 0
        assert adaptive_seq == static_seq
        assert adaptive_stats == static_stats

    def test_silent_stream_gates_the_barrier_drain(self):
        # Stream 2 stays silent for most of the run, then delivers a
        # low-timestamp backlog at the end.  The completeness gate holds
        # the other streams' tuples for it, and the migration barrier's
        # forced drain — floored at the per-stream progress minimum —
        # must not outrun that gate (regression: an observed-lag
        # heuristic misses a stream that has routed nothing yet).
        rng = random.Random(9)
        sampler = ZipfValueSampler(list(range(1, 17)), 1.2, rng)
        specs = []
        for i in range(1_200):
            specs.append((i % 2, 500 + i * 10, {"a1": sampler.sample()}))
        for i in range(240):
            specs.append((2, 200 + i * 10, {"a1": sampler.sample()}))
        dataset = from_tuple_specs(specs, num_streams=3)
        assert dataset.max_delay() == 0  # in order per stream
        config = lambda: PipelineConfig(  # noqa: E731
            window_sizes_ms=[seconds(2)] * 3,
            condition=equi_join_chain("a1", 3),
            policy=FixedKPolicy(0),
            initial_k_ms=0,
        )
        static_seq, static_stats, _, _ = _drive(
            dataset, config(), 4, rebalance=False
        )
        adaptive_seq, adaptive_stats, _, pipeline = _drive(
            dataset,
            config(),
            4,
            rebalance=True,
            rebalance_interval=256,
            rebalance_threshold=1.05,
        )
        assert pipeline.rebalances > 0
        assert adaptive_seq == static_seq
        assert adaptive_stats == static_stats

    def test_small_rebalance_interval_still_plans(self):
        # Regression: the planner's min-sample gate must scale down with
        # the check interval, or counters decayed at every check would
        # never reach it and rebalancing would silently stay off.
        dataset = skewed_dataset(num_tuples=2_000)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, collect=False), 4,
            rebalance=True, rebalance_interval=64,
        )
        with pipeline:
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()
        assert pipeline.rebalances > 0

    def test_executor_submitted_counters_track_routing(self):
        dataset = skewed_dataset(num_tuples=1_000)
        pipeline = PartitionedPipeline(
            _lossless_config(dataset, collect=False), 3
        )
        with pipeline:
            for t in dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()
        # Exact routing: executor-side per-shard submissions mirror the
        # router's shard-load counters and account for every tuple.
        assert pipeline.executor.submitted == pipeline.router.shard_loads
        assert sum(pipeline.executor.submitted) == len(dataset)
        # Broadcast: no routing counters exist; the executor's are the
        # only per-shard load record, one copy of the stream per shard.
        config = PipelineConfig(
            window_sizes_ms=[seconds(1)] * 2,
            condition=JoinCondition([]),
            policy=FixedKPolicy(0),
            collect_results=False,
        )
        specs = [(i % 2, i * 10, {"a1": i % 5}) for i in range(90)]
        broadcast_dataset = from_tuple_specs(specs, num_streams=2)
        pipeline = PartitionedPipeline(config, 3)
        with pipeline:
            for t in broadcast_dataset.arrivals():
                pipeline.process(t)
            pipeline.flush()
        assert pipeline.executor.submitted == [90, 90, 90]

    def test_adaptive_routing_reduces_imbalance_under_skew(self):
        dataset = skewed_dataset()
        _, _, _, static = _drive(
            dataset, _lossless_config(dataset), 4, rebalance=False
        )
        _, _, _, adaptive = _drive(
            dataset,
            _lossless_config(dataset),
            4,
            rebalance=True,
            rebalance_interval=512,
        )

        from repro import load_imbalance

        assert load_imbalance(adaptive.router.shard_loads) < load_imbalance(
            static.router.shard_loads
        )


# ----------------------------------------------------------------------
# router: slot table semantics + edge cases (satellite)
# ----------------------------------------------------------------------


class TestSlotRouting:
    def test_initial_table_reproduces_static_modulo_hashing(self):
        # slots = 64 × shards is a multiple of shards, so the identity
        # table makes slot routing == direct stable_hash % num_shards.
        router = KeyRouter(equi_join_chain("a1", 3), 3, 4)
        assert router.slot_table == [s % 4 for s in range(router.num_slots)]
        for value in list(range(200)) + ["x", "hot", None, (1, 2)]:
            t = StreamTuple(ts=1, values={"a1": value}, stream=0)
            assert router.shard_of(t) == stable_hash(value) % 4

    def test_route_batch_agrees_with_shard_of_and_counts_loads(self):
        router = KeyRouter(equi_join_chain("a1", 2), 2, 3)
        batch = [
            StreamTuple(ts=i, values={"a1": i % 11}, stream=i % 2,
                        arrival=i + 5)
            for i in range(100)
        ]
        routed = router.route_batch(batch)
        for shard, shard_batch in enumerate(routed):
            for t in shard_batch:
                assert router.shard_of(t) == shard
        assert sum(router.slot_loads) == 100
        assert router.shard_loads == [len(b) for b in routed]
        assert router.watermark_ts == 104  # max(arrival, ts) over batch
        # Per-stream progress: stream 0 saw even i up to 98, stream 1 odd
        # i up to 99 — the min is the completeness-gate drain floor.
        assert router.stream_progress_ts == [98, 99]

    def test_route_batch_empty_batch(self):
        router = KeyRouter(equi_join_chain("a1", 2), 2, 3)
        assert router.route_batch([]) == [[], [], []]
        assert sum(router.slot_loads) == 0
        router_broadcast = KeyRouter(JoinCondition([]), 2, 3)
        assert router_broadcast.route_batch([]) is None

    def test_reassign_moves_future_tuples_and_validates(self):
        router = KeyRouter(equi_join_chain("a1", 2), 2, 2)
        t = StreamTuple(ts=1, values={"a1": 7}, stream=0)
        slot = router.slot_of(t)
        old = router.shard_of(t)
        router.reassign({slot: 1 - old})
        assert router.shard_of(t) == 1 - old
        with pytest.raises(ValueError):
            router.reassign({router.num_slots: 0})
        with pytest.raises(ValueError):
            router.reassign({0: 99})

    def test_broadcast_condition_rejects_rebalancing(self):
        config = PipelineConfig(
            window_sizes_ms=[seconds(1)] * 2,
            condition=JoinCondition([]),  # cross join: no partition key
            policy=FixedKPolicy(0),
        )
        with pytest.raises(ValueError, match="broadcast"):
            PartitionedPipeline(config, 2, rebalance=True)
        with pytest.raises(ValueError):
            Rebalancer(KeyRouter(JoinCondition([]), 2, 2))

    def test_single_key_all_hot_stream_never_moves(self):
        # One key = one slot; LPT can isolate it but never split it, so
        # the plan can't beat the current max and must decline.
        specs = [(i % 3, i * 25, {"a1": 1}) for i in range(800)]
        dataset = from_tuple_specs(specs, num_streams=3)
        seq, stats, metrics, pipeline = _drive(
            dataset,
            _lossless_config(dataset),
            4,
            rebalance=True,
            rebalance_interval=256,
            rebalance_threshold=1.05,
        )
        assert pipeline.rebalances == 0
        assert pipeline.slots_moved == 0
        static_seq, static_stats, _, _ = _drive(
            dataset, _lossless_config(dataset), 4, rebalance=False
        )
        assert seq == static_seq
        assert stats == static_stats

    def test_slot_assignment_deterministic_across_processes(self):
        # String hashing is seed-randomized per interpreter; the slot
        # computation must not be.  A fork()ed child inherits the parent
        # seed, so spawn a *fresh* interpreter.
        keys = ["alpha", "beta", "hot-key", "δ", 7, 7.0, (1, "x"), None]
        code = (
            "from repro.parallel.router import KeyRouter, stable_hash\n"
            "from repro import equi_join_chain\n"
            "r = KeyRouter(equi_join_chain('a1', 3), 3, 4)\n"
            f"keys = {keys!r}\n"
            "print([stable_hash(k) % r.num_slots for k in keys])\n"
            "print(r.slot_table)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            os.path.join(os.path.dirname(__file__), "..", "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        env.pop("PYTHONHASHSEED", None)
        outputs = [
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        router = KeyRouter(equi_join_chain("a1", 3), 3, 4)
        local = [stable_hash(k) % router.num_slots for k in keys]
        assert outputs[0].splitlines()[0] == repr(local)


# ----------------------------------------------------------------------
# rebalancer planning
# ----------------------------------------------------------------------


class TestRebalancerPlanning:
    def _router_with_loads(self, loads_by_slot, shards=2):
        router = KeyRouter(equi_join_chain("a1", 2), 2, shards)
        for slot, load in loads_by_slot.items():
            router.slot_loads[slot] = load
        return router

    def test_no_plan_below_threshold(self):
        router = self._router_with_loads({0: 500, 1: 500})  # slots 0/1 on shards 0/1
        assert Rebalancer(router, threshold=1.25).plan() is None

    def test_no_plan_below_min_sample(self):
        router = self._router_with_loads({0: 30})
        assert Rebalancer(router, threshold=1.05, min_sample=256).plan() is None

    def test_lpt_isolates_hot_slot_and_balances_rest(self):
        # Hot slot 0 plus four warm slots all on shard 0 (even slots).
        router = self._router_with_loads(
            {0: 400, 2: 100, 4: 100, 6: 100, 8: 100}
        )
        rebalancer = Rebalancer(router, threshold=1.25)
        moves = rebalancer.plan()
        assert moves  # shard 0 carried everything
        new_table = list(router.slot_table)
        for slot, dest in moves.items():
            new_table[slot] = dest
        shard_loads = [0, 0]
        for slot, load in {0: 400, 2: 100, 4: 100, 6: 100, 8: 100}.items():
            shard_loads[new_table[slot]] += load
        assert max(shard_loads) == 400  # hot slot isolated, warm moved off
        assert new_table[0] == 0  # stickiness: hot slot stays put

    def test_zero_load_slots_never_move(self):
        router = self._router_with_loads({0: 400, 2: 300})
        moves = Rebalancer(router, threshold=1.05).plan() or {}
        moved = set(moves)
        assert moved <= {0, 2}

    def test_plan_decays_counters(self):
        router = self._router_with_loads({0: 400, 2: 100})
        Rebalancer(router, threshold=1.05).plan()
        assert router.slot_loads[0] == 200
        assert router.slot_loads[2] == 50

    def test_plan_declines_when_no_improvement_possible(self):
        # All load on one slot: isolation cannot lower the max.
        router = self._router_with_loads({0: 1_000})
        assert Rebalancer(router, threshold=1.05).plan() is None


# ----------------------------------------------------------------------
# state-migration primitives
# ----------------------------------------------------------------------


class TestMigrationPrimitives:
    def test_kslack_advance_clock_releases_watermarked(self):
        buffer = KSlackBuffer(100)
        held = buffer.process(StreamTuple(ts=50, stream=0))
        assert held == []
        released = buffer.advance_clock(200)
        assert [t.ts for t in released] == [50]
        assert buffer.advance_clock(150) == []  # clock never regresses
        assert buffer.local_time == 200

    def test_kslack_extract_keeps_clock_and_order(self):
        buffer = KSlackBuffer(1_000)
        for ts in (30, 10, 20):
            buffer.process(StreamTuple(ts=ts, values={"a1": ts}, stream=0))
        extracted = buffer.extract(lambda t: t["a1"] != 20)
        assert [t.ts for t in extracted] == [10, 30]
        assert buffer.buffered == 1
        assert buffer.local_time == 30
        # Remaining tuple still releases normally.
        assert [t.ts for t in buffer.flush()] == [20]

    def test_kslack_adopt_keeps_annotation_and_clock(self):
        buffer = KSlackBuffer(100)
        buffer.process(StreamTuple(ts=500, stream=0))  # clock 500
        held = StreamTuple(ts=450, stream=0)
        held.delay = 77  # annotated at the source buffer
        ripe = StreamTuple(ts=350, stream=0)
        ripe.delay = 5
        # Adoption is two-phase: inserting never releases — even in this
        # deliberately inverted order (high ts first), the single drain
        # afterwards hands back only what the clock permits, in ts order.
        buffer.adopt(held)
        buffer.adopt(ripe)
        released = buffer.drain_ready()
        assert released == [ripe]  # 350 <= 500 - K; 450 stays buffered
        assert ripe.delay == 5 and held.delay == 77  # never re-annotated
        assert buffer.local_time == 500  # adoption never advances iT
        assert buffer.tuples_seen == 1  # migrants aren't re-counted
        assert buffer.buffered == 2  # ts=450 adoptee + the buffer's own ts=500

    def test_synchronizer_drain_below_preserves_order_and_tsync(self):
        sync = Synchronizer(2)
        assert sync.process(StreamTuple(ts=10, stream=0)) == []
        assert sync.process(StreamTuple(ts=30, stream=0)) == []
        emitted = sync.drain_below(20)
        assert [t.ts for t in emitted] == [10]
        assert sync.t_sync == 10
        assert sync.buffered == 1
        # A later completeness drain continues above the watermark.
        emitted = sync.process(StreamTuple(ts=40, stream=1))
        assert [t.ts for t in emitted] == [30]

    def test_synchronizer_extract_updates_gating(self):
        sync = Synchronizer(2)
        sync.process(StreamTuple(ts=10, values={"a1": 1}, stream=0))
        extracted = sync.extract(lambda t: t["a1"] == 1)
        assert [t.ts for t in extracted] == [10]
        assert sync.buffered == 0
        # Stream 0 empty again: a lone stream-1 tuple must not emit.
        assert sync.process(StreamTuple(ts=20, values={"a1": 2}, stream=1)) == []

    def test_window_extract_preserves_bucket_order(self):
        window = SlidingWindow(seconds(10), indexed_attributes=("a1",))
        tuples = [
            StreamTuple(ts=ts, values={"a1": ts % 2}, stream=0, seq=i)
            for i, ts in enumerate((5, 4, 9, 2, 1))
        ]
        for t in tuples:
            window.insert(t)
        extracted = window.extract(lambda t: t["a1"] == 1)
        # Insertion order among extracted (ts odd): 5, 9, 1 — not sorted.
        assert [t.ts for t in extracted] == [5, 9, 1]
        assert window.cardinality == 2
        assert [t.ts for t in window.lookup("a1", 0)] == [4, 2]
        peer = SlidingWindow(seconds(10), indexed_attributes=("a1",))
        for t in extracted:
            peer.insert(t)
        assert [t.ts for t in peer.lookup("a1", 1)] == [5, 9, 1]

    def test_state_block_codec_round_trip(self):
        window = [
            StreamTuple(ts=5, values={"a1": 1, "b": None}, stream=0, seq=0,
                        arrival=6),
            StreamTuple(ts=7, values={"a1": 2}, stream=1, seq=0, arrival=9),
        ]
        window[0].delay = 3
        pending = [StreamTuple(ts=11, values={"a1": 1}, stream=2, seq=1,
                               arrival=12)]
        block = encode_state(0, 1, (3, 5), window, pending)
        assert isinstance(block, StateBlock)
        decoded_window, decoded_pending = decode_state(block)
        assert decoded_window == window
        assert decoded_window[0].delay == 3
        assert decoded_window[0].values == {"a1": 1, "b": None}
        assert decoded_pending == pending

    def test_slot_classifier_mirrors_router(self):
        router = KeyRouter(equi_join_chain("a1", 3), 3, 4)
        moves = {router.slot_of(StreamTuple(ts=1, values={"a1": 9}, stream=0)): 2}
        spec = MigrationSpec(
            moves=moves,
            attr_by_stream=("a1", "a1", "a1"),
            num_slots=router.num_slots,
            beacon_ts=0,
        )
        classify = slot_classifier(spec)
        assert classify(StreamTuple(ts=1, values={"a1": 9}, stream=1)) == 2
        miss = StreamTuple(ts=1, values={"a1": 10}, stream=0)
        if router.slot_of(miss) not in moves:
            assert classify(miss) is None

    def test_prepare_and_adopt_round_trip_between_pipelines(self):
        dataset = skewed_dataset(num_tuples=1_200, domain=8)
        config = _lossless_config(dataset)
        source = QualityDrivenPipeline(config)
        dest = QualityDrivenPipeline(config)
        for t in dataset.arrivals():
            source.process(t)
        beacon = max(max(t.arrival, t.ts) for t in dataset.arrivals())
        classify = lambda t: "dest" if t["a1"] == 1 else None  # noqa: E731
        outputs, window_groups, pending_groups = source.prepare_migration(
            classify, beacon
        )
        window_tuples = window_groups.get("dest", [])
        pending = pending_groups.get("dest", [])
        assert set(window_groups) <= {"dest"}
        assert set(pending_groups) <= {"dest"}
        assert all(t["a1"] == 1 for t in window_tuples)
        assert all(t["a1"] == 1 for t in pending)
        # Source windows hold nothing of the moved key anymore.
        for window in source.join.windows:
            assert all(t["a1"] != 1 for t in window.tuples())
        dest.adopt_migration(window_tuples, pending)
        total = sum(w.cardinality for w in dest.join.windows) + sum(
            k.buffered for k in dest.kslacks
        ) + dest.synchronizer.buffered
        assert total == len(window_tuples) + len(pending)

    def test_migrate_refused_after_flush(self):
        dataset = skewed_dataset(num_tuples=300, domain=4)
        pipeline = QualityDrivenPipeline(_lossless_config(dataset))
        pipeline.flush()
        with pytest.raises(RuntimeError):
            pipeline.prepare_migration(lambda t: True, 0)
        with pytest.raises(RuntimeError):
            pipeline.adopt_migration([], [])

    def test_custom_executor_without_migration_support_fails_fast(self):
        dataset = skewed_dataset(num_tuples=300, domain=4)
        config = _lossless_config(dataset)

        class Minimal(ShardExecutor):
            """Implements only the abstract surface — no migrate/adopt."""

            def __init__(self, config, num_shards):
                super().__init__(config, num_shards)
                self._inner = SerialExecutor(config, num_shards)

            def submit(self, shard, t):
                return self._inner.submit(shard, t)

            def finish(self):
                return self._inner.finish()

        # Rejected at construction (not mid-run with state already fed):
        with pytest.raises(ValueError, match="state-migration protocol"):
            PartitionedPipeline(
                config,
                2,
                executor=lambda c, n: Minimal(c, n),
                rebalance=True,
            )
        # Without rebalancing the same executor is fine, and the base
        # defaults still refuse a direct migrate call (defense in depth).
        pipeline = PartitionedPipeline(
            config, 2, executor=lambda c, n: Minimal(c, n)
        )
        with pytest.raises(RuntimeError, match="state migration"):
            pipeline.executor.migrate(0, None)
