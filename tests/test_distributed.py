"""Tests for the tree-of-binary-joins execution (repro.distributed, paper Sec. V)."""

import random

import pytest

from repro import (
    EquiPredicate,
    JoinCondition,
    MSWJOperator,
    StreamTuple,
    ThetaPredicate,
    equi_join_chain,
    star_equi_join,
)
from repro.distributed.tree import PartialResult, TreeJoinOperator
from repro.streams.source import Dataset

from .reference import reference_join, result_key_set


def _t(stream, ts, seq=None, **values):
    return StreamTuple(
        ts=ts, values=values, stream=stream, seq=ts if seq is None else seq
    )


def _random_dataset(num_streams, count, seed, domain=3, span=400):
    rng = random.Random(seed)
    tuples = []
    seqs = [0] * num_streams
    for position in range(count):
        stream = rng.randrange(num_streams)
        tuples.append(
            StreamTuple(
                ts=rng.randrange(span),
                values={"v": rng.randrange(domain)},
                stream=stream,
                seq=seqs[stream],
                arrival=position,
            )
        )
        seqs[stream] += 1
    return Dataset(tuples, num_streams=num_streams)


def _run_tree(dataset, windows, condition):
    tree = TreeJoinOperator(windows, condition)
    produced = []
    for t in dataset.sorted_by_timestamp():
        produced.extend(tree.process(t))
    produced.extend(tree.flush())
    return produced


class TestPartialResult:
    def test_timestamp_is_max_component(self):
        p = PartialResult({0: _t(0, 10), 1: _t(1, 30)})
        assert p.ts == 30

    def test_expiry_is_min_reach(self):
        p = PartialResult({0: _t(0, 10), 1: _t(1, 30)})
        # W = [100, 50]: expiry = min(10+100, 30+50) = 80.
        assert p.expiry([100, 50]) == 80

    def test_of_base_tuple_carries_delay(self):
        base = _t(0, 10)
        base.delay = 7
        p = PartialResult.of(base)
        assert p.delay == 7
        assert p.components == {0: base}


class TestTreeEquivalence:
    """On ordered input the tree must produce exactly the MJoin result set."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_two_way_equi(self, seed):
        ds = _random_dataset(2, 70, seed)
        windows = [150, 150]
        condition = JoinCondition([EquiPredicate(0, "v", 1, "v")])
        produced = _run_tree(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)
        assert len(produced) == len(expected)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_three_way_chain(self, seed):
        ds = _random_dataset(3, 50, seed)
        windows = [120, 100, 140]
        condition = equi_join_chain("v", 3)
        produced = _run_tree(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    def test_four_way_star(self):
        ds = _random_dataset(4, 40, seed=6, domain=2)
        windows = [100] * 4
        condition = star_equi_join(0, {1: "v", 2: "v", 3: "v"})
        produced = _run_tree(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    def test_theta_condition(self):
        ds = _random_dataset(2, 50, seed=7, domain=10)
        windows = [120, 120]
        condition = JoinCondition(
            [ThetaPredicate((0, 1), lambda a, b: a["v"] + b["v"] >= 9)]
        )
        produced = _run_tree(ds, windows, condition)
        expected = reference_join(ds, windows, condition)
        assert result_key_set(produced) == result_key_set(expected)

    def test_matches_mjoin_operator_output(self):
        ds = _random_dataset(3, 60, seed=8)
        windows = [100, 100, 100]
        condition = equi_join_chain("v", 3)
        tree_results = _run_tree(ds, windows, condition)
        mjoin = MSWJOperator(windows, condition)
        mjoin_results = []
        for t in ds.sorted_by_timestamp():
            mjoin_results.extend(mjoin.process(t))
        assert result_key_set(tree_results) == result_key_set(mjoin_results)


class TestTreeLifecycle:
    """Regression tests for the end-of-stream surface (ISSUE 10 bugfixes)."""

    CONDITION = JoinCondition([EquiPredicate(0, "v", 1, "v")])

    def test_close_stream_releases_gated_partner(self):
        # A lone stream-0 tuple sits gated in node 0's synchronizer until
        # stream 1 produces or ends; closing stream 1 must release it
        # (and produce nothing, as no partner exists).
        tree = TreeJoinOperator([1_000, 1_000], self.CONDITION)
        tree.process(_t(0, 100, v=1))
        assert tree.nodes[0]._sync.buffered == 1
        released = tree.close_stream(1)
        assert released == []
        assert tree.nodes[0]._sync.buffered == 0

    def test_close_all_streams_equals_flush(self):
        ds = _random_dataset(3, 60, seed=11)
        windows = [120, 100, 140]
        condition = equi_join_chain("v", 3)
        flushed = _run_tree(ds, windows, condition)

        closed_tree = TreeJoinOperator(windows, condition)
        produced = []
        for t in ds.sorted_by_timestamp():
            produced.extend(closed_tree.process(t))
        for stream in range(3):
            produced.extend(closed_tree.close_stream(stream))
        assert result_key_set(produced) == result_key_set(flushed)
        assert len(produced) == len(flushed)
        # The closure cascaded down the left-deep chain: every node is
        # exhausted and holds no leaked carriers.
        for node in closed_tree.nodes:
            assert node.exhausted
            assert node._carrier_map == {}

    def test_close_matches_pipeline_close_semantics(self):
        # Differential against MSWJOperator: per-stream closure releases
        # gated tuples but never invents results the m-way join would not
        # produce — the final set equals the reference regardless of the
        # order streams end in.
        ds = _random_dataset(3, 50, seed=12)
        windows = [110, 110, 110]
        condition = equi_join_chain("v", 3)
        expected = reference_join(ds, windows, condition)
        for order in ([0, 1, 2], [2, 1, 0], [1, 0, 2]):
            tree = TreeJoinOperator(windows, condition)
            produced = []
            for t in ds.sorted_by_timestamp():
                produced.extend(tree.process(t))
            for stream in order:
                produced.extend(tree.close_stream(stream))
            assert result_key_set(produced) == result_key_set(expected)

    def test_close_stream_is_idempotent_and_rejects_feed(self):
        tree = TreeJoinOperator([1_000, 1_000], self.CONDITION)
        tree.process(_t(0, 100, v=1))
        tree.close_stream(0)
        assert tree.close_stream(0) == []
        with pytest.raises(ValueError):
            tree.process(_t(0, 200, v=1, seq=1))
        with pytest.raises(ValueError):
            tree.close_stream(9)

    def test_result_buffer_trimmed_on_drain(self):
        # Soak-style bounded-residency check: in collect mode the drained
        # prefix must leave the operator, not accumulate for the stream's
        # lifetime (pre-fix `_drain` sliced but never trimmed).
        tree = TreeJoinOperator([50, 50], self.CONDITION)
        total = 0
        for i in range(300):
            total += len(tree.process(_t(0, i * 10, seq=i, v=1)))
            total += len(tree.process(_t(1, i * 10 + 1, seq=i, v=1)))
            assert len(tree._results) == 0, "drained results left resident"
        total += len(tree.flush())
        assert total == tree.results_produced > 0

    def test_expiry_cached_after_first_call(self):
        p = PartialResult({0: _t(0, 10), 1: _t(1, 30)})
        windows = [100, 50]
        assert p._expiry is None
        assert p.expiry(windows) == 80
        assert p._expiry == 80
        # Mutating the windows afterwards must not change the cached value
        # (window sizes are fixed per operator for a composite's lifetime).
        windows[1] = 9_999
        assert p.expiry(windows) == 80


class TestTreeDisorderBehaviour:
    def test_out_of_order_base_tuple_insert_only(self):
        windows = [1_000, 1_000]
        tree = TreeJoinOperator(windows, JoinCondition([EquiPredicate(0, "v", 1, "v")]))
        tree.process(_t(0, 100, v=1))
        tree.process(_t(1, 100, v=1))
        tree.flush()
        assert tree.results_produced == 1

    def test_count_only_mode(self):
        tree = TreeJoinOperator(
            [1_000, 1_000],
            JoinCondition([EquiPredicate(0, "v", 1, "v")]),
            collect_results=False,
        )
        total = tree.process(_t(0, 100, v=1))
        total += tree.process(_t(1, 150, v=1))
        total += tree.flush()
        assert total == 1

    def test_needs_two_streams(self):
        with pytest.raises(ValueError):
            TreeJoinOperator([100], JoinCondition())

    def test_bad_stream_rejected(self):
        tree = TreeJoinOperator([100, 100], JoinCondition())
        with pytest.raises(ValueError):
            tree.process(_t(5, 10))

    def test_delay_annotation_propagates(self):
        captured = []
        tree = TreeJoinOperator([1_000, 1_000], JoinCondition())
        original_sink = tree._root_sink

        def capture(item):
            captured.append(item.delay)
            original_sink(item)

        tree.nodes[-1]._output = capture
        first = _t(0, 100)
        first.delay = 0
        late = _t(1, 150)
        late.delay = 42
        tree.process(first)
        tree.process(late)
        tree.flush()
        assert captured == [42]
