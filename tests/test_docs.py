"""Tier-1 wiring of the docs gate (``tools/check_docs.py``).

CI runs the gate as its own job; running it here too means a stale
fenced example or broken relative link in ``README.md`` / ``docs/*.md``
fails the ordinary test suite on a developer machine, before any push.
Also pins the checker's own parsing primitives (fence extraction,
GitHub anchor slugs) so the gate itself cannot silently stop checking.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


def test_documents_inventory_includes_the_doc_subsystem():
    names = {path.name for path in check_docs.documents()}
    assert {"README.md", "ARCHITECTURE.md", "BENCHMARKS.md"} <= names


def test_fence_extraction_and_slugs():
    text = "# A Title!\n```python\nx = 1\n```\n## The `code` (part)\n"
    blocks = list(check_docs.fenced_blocks(text))
    assert blocks == [("python", "x = 1", 2)]
    anchors = check_docs.heading_anchors(text)
    assert "a-title" in anchors
    assert "the-code-part" in anchors


def test_checker_reports_broken_examples_and_links(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Doc\n"
        "```python\n>>> 1 + 1\n3\n```\n"
        "```python\ndef broken(:\n```\n"
        "[missing](no_such_file.md)\n"
        "[bad anchor](#nowhere)\n",
        encoding="utf-8",
    )
    errors = check_docs.check_document(bad)
    assert len(errors) == 4


def test_repository_documents_pass_the_gate(capsys):
    failing = check_docs.main()
    captured = capsys.readouterr()
    assert failing == 0, f"docs gate failed:\n{captured.err}"
    # The gate is actually exercising content, not vacuously passing.
    assert "ARCHITECTURE.md: 4 python block(s)" in captured.out
