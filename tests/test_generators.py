"""Unit tests for the synthetic dataset generators (repro.streams.generators)."""

import random

import pytest

from repro import make_d3_syn, make_d4_syn, seconds
from repro.streams.disorder import NoDelayModel
from repro.streams.generators import (
    AttributeSpec,
    SyntheticStreamConfig,
    generate_dataset,
    generate_stream,
)


def _small_d3(**overrides):
    kwargs = dict(
        duration_ms=seconds(10),
        seed=3,
        inter_arrival_ms=100,
        max_delay_ms=2_000,
        skew_change_interval_ms=(1_000, 2_000),
    )
    kwargs.update(overrides)
    return make_d3_syn(**kwargs)


class TestGenerateStream:
    def _config(self, delay_model=None):
        return SyntheticStreamConfig(
            attributes=[AttributeSpec(name="a1", time_varying=False)],
            delay_model=delay_model or NoDelayModel(),
            inter_arrival_ms=100,
        )

    def test_arrival_clock_advances_by_gap(self):
        tuples = generate_stream(0, self._config(), seconds(2), random.Random(1))
        arrivals = [t.arrival for t in tuples]
        assert arrivals == list(range(100, 2001, 100))

    def test_in_order_without_delay(self):
        tuples = generate_stream(0, self._config(), seconds(2), random.Random(1))
        timestamps = [t.ts for t in tuples]
        assert timestamps == sorted(timestamps)
        assert all(t.ts == t.arrival for t in tuples)

    def test_sequence_numbers_consecutive(self):
        tuples = generate_stream(0, self._config(), seconds(1), random.Random(1))
        assert [t.seq for t in tuples] == list(range(len(tuples)))

    def test_timestamps_never_negative(self):
        from repro.streams.disorder import ConstantDelayModel

        config = self._config(ConstantDelayModel(5_000))
        tuples = generate_stream(0, config, seconds(2), random.Random(1))
        assert all(t.ts >= 0 for t in tuples)

    def test_values_within_domain(self):
        tuples = generate_stream(0, self._config(), seconds(5), random.Random(1))
        assert all(1 <= t["a1"] <= 100 for t in tuples)


class TestD3Syn:
    def test_three_streams(self):
        ds = _small_d3()
        assert ds.num_streams == 3
        assert all(len(ds.stream_tuples(i)) > 0 for i in range(3))

    def test_schema_is_ts_a1(self):
        ds = _small_d3()
        assert all(set(t.values) == {"a1"} for t in ds)

    def test_delays_bounded_by_max(self):
        ds = _small_d3()
        assert ds.max_delay() <= 2_000

    def test_stream_one_more_disordered_than_others(self):
        # Paper: z_1^d = 2.0 < z_2^d = z_3^d = 3.0, so stream 0 has more
        # and larger delays on average.
        ds = make_d3_syn(
            duration_ms=seconds(120),
            seed=5,
            inter_arrival_ms=20,
            max_delay_ms=5_000,
        )

        def disorder_fraction(stream):
            tuples = ds.stream_tuples(stream)
            local = 0
            late = 0
            for t in tuples:
                if t.ts >= local:
                    local = t.ts
                else:
                    late += 1
            return late / len(tuples)

        assert disorder_fraction(0) > disorder_fraction(1)

    def test_deterministic_per_seed(self):
        a = _small_d3(seed=11)
        b = _small_d3(seed=11)
        assert [t.ts for t in a] == [t.ts for t in b]
        assert [t.get("a1") for t in a] == [t.get("a1") for t in b]

    def test_different_seeds_differ(self):
        a = _small_d3(seed=1)
        b = _small_d3(seed=2)
        assert [t.ts for t in a] != [t.ts for t in b]

    def test_wrong_skew_count_rejected(self):
        with pytest.raises(ValueError):
            make_d3_syn(duration_ms=1_000, delay_skews=(1.0, 2.0))

    def test_nominal_rates_recorded(self):
        ds = _small_d3()
        assert ds.nominal_rates == [10.0, 10.0, 10.0]  # 1000/100 per second


class TestD4Syn:
    def _small_d4(self):
        return make_d4_syn(
            duration_ms=seconds(10),
            seed=3,
            inter_arrival_ms=100,
            max_delay_ms=2_000,
            skew_change_interval_ms=(1_000, 2_000),
        )

    def test_four_streams_star_schema(self):
        ds = self._small_d4()
        assert ds.num_streams == 4
        schemas = [set(ds.stream_tuples(i)[0].values) for i in range(4)]
        assert schemas == [{"a1", "a2", "a3"}, {"a1"}, {"a2"}, {"a3"}]

    def test_wrong_skew_count_rejected(self):
        with pytest.raises(ValueError):
            make_d4_syn(duration_ms=1_000, delay_skews=(1.0,))

    def test_arrival_order_is_merged(self):
        ds = self._small_d4()
        arrivals = [t.arrival for t in ds]
        assert arrivals == sorted(arrivals)


class TestTimeVaryingSkew:
    def test_skew_changes_alter_value_distribution(self):
        # With changes enabled and a long run, the frequency of the most
        # common value should differ between halves at least sometimes;
        # at minimum the generator must not crash and must stay in-domain.
        config = SyntheticStreamConfig(
            attributes=[
                AttributeSpec(
                    name="a1",
                    initial_skew=0.0,
                    skew_range=(4.0, 5.0),
                    change_interval_ms=(500, 501),
                )
            ],
            delay_model=NoDelayModel(),
            inter_arrival_ms=10,
        )
        tuples = generate_stream(0, config, seconds(4), random.Random(7))
        first_half = [t["a1"] for t in tuples[: len(tuples) // 2]]
        second_half = [t["a1"] for t in tuples[len(tuples) // 2 :]]
        # After the switch to a highly skewed regime, value 1 dominates.
        assert second_half.count(1) / len(second_half) > first_half.count(1) / len(
            first_half
        )


class TestGenerateDataset:
    def test_streams_independent_of_each_other(self):
        def config():
            return SyntheticStreamConfig(
                attributes=[AttributeSpec(name="a1", time_varying=False)],
                delay_model=NoDelayModel(),
                inter_arrival_ms=50,
            )

        two = generate_dataset([config(), config()], seconds(2), seed=9)
        three = generate_dataset([config(), config(), config()], seconds(2), seed=9)
        # Adding a third stream must not perturb the first two.
        assert [t.ts for t in two.stream_tuples(0)] == [
            t.ts for t in three.stream_tuples(0)
        ]
        assert [t.get("a1") for t in two.stream_tuples(1)] == [
            t.get("a1") for t in three.stream_tuples(1)
        ]
