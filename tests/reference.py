"""Brute-force reference implementations used to validate the engine.

The MSWJ semantics (paper Sec. II-A): a combination ``<e_1, ..., e_m>``
(one tuple per stream) is a result iff every ordered pair satisfies the
window constraint ``e_j.ts >= e_i.ts - W_j`` (equivalently each tuple
falls within ``[e_i.ts - W_j, e_i.ts + W_i]`` of every other) and the
join condition holds.  The reference enumerates all combinations —
O(prod |S_i|) — so keep the fixtures small.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro import JoinCondition, JoinResult, StreamTuple
from repro.streams.source import Dataset


def reference_join(
    dataset: Dataset,
    window_sizes_ms: Sequence[int],
    condition: JoinCondition,
) -> List[JoinResult]:
    """All true results by exhaustive enumeration."""
    per_stream = [dataset.stream_tuples(i) for i in range(dataset.num_streams)]
    results: List[JoinResult] = []
    for combo in itertools.product(*per_stream):
        if not _windows_ok(combo, window_sizes_ms):
            continue
        bound = {t.stream: t for t in combo}
        if condition.evaluate(bound):
            ts = max(t.ts for t in combo)
            results.append(JoinResult(ts, tuple(combo)))
    return results


def _windows_ok(combo: Sequence[StreamTuple], window_sizes_ms: Sequence[int]) -> bool:
    for a in combo:
        for b in combo:
            if a is b:
                continue
            # b must be within a's reach: b.ts >= a.ts - W_b
            if b.ts < a.ts - window_sizes_ms[b.stream]:
                return False
    return True


def result_key_set(results: Sequence[JoinResult]) -> set:
    return {r.key() for r in results}
